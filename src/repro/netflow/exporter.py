"""Packet-sampled flow export.

Routers export NetFlow with 1-in-N packet sampling at a constant rate
(Sect. 7.2).  Two pieces live here:

* :class:`PacketSampler` — samples a packet stream (or an already
  flow-aggregated stream) at 1-in-N and provides the standard inverse-
  probability estimator for scaling sampled counts back up.  The
  estimator's unbiasedness is covered by property tests.
* :class:`FlowExporter` — the router/interface model: assigns router and
  interface identifiers, keeps only user-facing (internal-edge)
  interfaces as the paper does, and applies ingress filtering (BCP38):
  flows whose subscriber-side address is outside the ISP's own address
  space are dropped as spoofed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

from repro.errors import NetFlowError
from repro.netbase.addr import IPAddress, Prefix
from repro.netflow.records import FlowRecord


class PacketSampler:
    """1-in-N packet sampling with inverse-probability estimation."""

    def __init__(self, rate: int) -> None:
        if rate < 1:
            raise NetFlowError("sampling rate must be >= 1")
        self.rate = rate

    def sample_count(self, packets: int, rng: random.Random) -> int:
        """Sampled packet count for a flow of ``packets`` true packets.

        Each packet is independently kept with probability ``1/rate``
        (binomial thinning) — the exact model behind router packet
        sampling.
        """
        if packets < 0:
            raise NetFlowError("packet count must be non-negative")
        if self.rate == 1:
            return packets
        p = 1.0 / self.rate
        # Direct Bernoulli thinning for small flows; normal approximation
        # would distort the (common) 0/1-sample regime.
        if packets <= 64:
            return sum(1 for _ in range(packets) if rng.random() < p)
        mean = packets * p
        variance = packets * p * (1.0 - p)
        return max(0, int(round(rng.gauss(mean, variance ** 0.5))))

    def estimate_total(self, sampled: int) -> int:
        """Inverse-probability (Horvitz–Thompson) estimate of the truth."""
        return sampled * self.rate


@dataclass(frozen=True)
class RouterInterface:
    """One (router, interface) pair with its position in the network."""

    router_id: int
    interface_id: int
    internal_edge: bool  # carries user traffic (vs. peering edge)


class FlowExporter:
    """The ISP's exporting edge: interface filter + ingress filtering."""

    def __init__(
        self,
        interfaces: Sequence[RouterInterface],
        subscriber_space: Sequence[Prefix],
        sampler: PacketSampler,
    ) -> None:
        if not interfaces:
            raise NetFlowError("exporter needs at least one interface")
        self._interfaces = list(interfaces)
        self._internal = [i for i in interfaces if i.internal_edge]
        if not self._internal:
            raise NetFlowError("exporter needs an internal-edge interface")
        self._subscriber_space = list(subscriber_space)
        self.sampler = sampler

    def internal_interfaces(self) -> List[RouterInterface]:
        return list(self._internal)

    def pick_interface(self, rng: random.Random) -> RouterInterface:
        return self._internal[rng.randrange(len(self._internal))]

    def is_subscriber_address(self, address: IPAddress) -> bool:
        return any(address in prefix for prefix in self._subscriber_space)

    def admit(self, record: FlowRecord) -> bool:
        """Ingress filtering (BCP38 / RFC2827): drop spoofed sources.

        A flow observed on an internal edge must have a subscriber-side
        address inside the ISP's own space.
        """
        return self.is_subscriber_address(
            record.src_ip
        ) or self.is_subscriber_address(record.dst_ip)

    def export(
        self, records: Iterable[FlowRecord]
    ) -> Iterator[FlowRecord]:
        """Filter a record stream through ingress filtering."""
        for record in records:
            if self.admit(record):
                yield record
