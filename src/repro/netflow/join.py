"""Privacy-preserving tracker-IP join over NetFlow (Sect. 7.2).

The paper matches flows against the tracker IP list with a hash
function, counting per-tracker-IP hits without retaining user IPs; user
addresses are replaced by the ISP's country code.  The join here does
exactly that:

* :class:`HashedIPMatcher` stores salted hashes of the tracker IPs and
  matches candidate addresses by hashing them — the raw tracker set is
  not consulted at match time;
* :class:`TrackerFlowJoin` walks a snapshot's flow records, checks both
  endpoints, honours each tracker IP's domain-association validity
  window, and accumulates per-IP counters plus the per-flow origin
  (anonymized to the ISP country) → destination country pairs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.errors import NetFlowError
from repro.netbase.addr import IPAddress
from repro.netflow.records import FlowRecord


class HashedIPMatcher:
    """Salted-hash membership test over the tracker IP set.

    ``window_slack_days`` extends each validity window on both sides:
    passive-DNS windows only record *observed* resolutions, so an
    association is considered live for a grace period beyond its last
    sighting (absence of observation is not evidence of reassignment).
    """

    def __init__(
        self, salt: str = "repro-join", window_slack_days: float = 75.0
    ) -> None:
        if window_slack_days < 0:
            raise NetFlowError("window slack must be non-negative")
        self._salt = salt.encode("utf-8")
        self.window_slack_days = window_slack_days
        self._hashes: Dict[bytes, IPAddress] = {}
        #: per-IP validity window; None means always valid
        self._windows: Dict[IPAddress, Optional[Tuple[float, float]]] = {}
        #: candidate-address memo: snapshots re-probe the same few
        #: thousand subscriber/server addresses millions of times, so
        #: the blake2b digest is paid once per *distinct* address and
        #: every later probe is a dict hit (invalidated on add())
        self._probe_memo: Dict[IPAddress, Optional[IPAddress]] = {}

    def __len__(self) -> int:
        return len(self._hashes)

    def _digest(self, address: IPAddress) -> bytes:
        return hashlib.blake2b(
            str(address).encode("ascii"), key=self._salt, digest_size=16
        ).digest()

    def add(
        self,
        address: IPAddress,
        window: Optional[Tuple[float, float]] = None,
    ) -> None:
        """Register a tracker IP, optionally with its validity window.

        Raises :class:`repro.errors.NetFlowError` when the window's end
        precedes its start.
        """
        if window is not None and window[1] < window[0]:
            raise NetFlowError("validity window end precedes start")
        self._hashes[self._digest(address)] = address
        self._probe_memo.clear()
        existing = self._windows.get(address)
        if window is None or existing is None and address in self._windows:
            self._windows[address] = None
        elif existing is None:
            self._windows[address] = window
        else:
            self._windows[address] = (
                min(existing[0], window[0]),
                max(existing[1], window[1]),
            )

    def probe(
        self, address: IPAddress
    ) -> Tuple[Optional[IPAddress], Optional[Tuple[float, float]]]:
        """Time-independent half of a match: ``(tracker_ip, window)``.

        ``tracker_ip`` is ``None`` for non-tracker addresses; a
        ``None`` window means always valid.  The digest is memoized per
        distinct address, so repeated probes (per-flow matching, the
        columnar join's per-dictionary-code pre-resolution) cost one
        dict lookup.
        """
        if address in self._probe_memo:
            found = self._probe_memo[address]
        else:
            found = self._hashes.get(self._digest(address))
            self._probe_memo[address] = found
        if found is None:
            return None, None
        return found, self._windows.get(found)

    def window_valid(
        self, window: Optional[Tuple[float, float]], at: float
    ) -> bool:
        """Is ``at`` inside ``window`` widened by the configured slack?"""
        if window is None:
            return True
        slack = self.window_slack_days
        return window[0] - slack <= at <= window[1] + slack

    def match(self, address: IPAddress, at: float) -> Optional[IPAddress]:
        """Return the tracker IP when ``address`` matches and is valid."""
        found, window = self.probe(address)
        if found is None or not self.window_valid(window, at):
            return None
        return found


@dataclass
class JoinResult:
    """Aggregated outcome of joining one snapshot."""

    isp_name: str
    origin_country: str
    day: float
    matched_flows: int = 0
    unmatched_flows: int = 0
    web_flows: int = 0
    encrypted_flows: int = 0
    per_tracker_ip: Dict[IPAddress, int] = field(default_factory=dict)
    #: destination country → matched flow count
    destinations: Dict[str, int] = field(default_factory=dict)

    @property
    def total_flows(self) -> int:
        return self.matched_flows + self.unmatched_flows

    def web_share(self) -> float:
        return self.web_flows / self.matched_flows if self.matched_flows else 0.0

    def encrypted_share(self) -> float:
        return (
            self.encrypted_flows / self.matched_flows
            if self.matched_flows
            else 0.0
        )


class TrackerFlowJoin:
    """Joins flow records against the tracker matcher with geolocation."""

    def __init__(
        self,
        matcher: HashedIPMatcher,
        locate: Callable[[IPAddress], Optional[str]],
    ) -> None:
        self._matcher = matcher
        self._locate = locate
        self._location_cache: Dict[IPAddress, Optional[str]] = {}

    def _located(self, address: IPAddress) -> Optional[str]:
        if address not in self._location_cache:
            self._location_cache[address] = self._locate(address)
        return self._location_cache[address]

    def join(
        self,
        isp_name: str,
        origin_country: str,
        day: float,
        records: Iterable[FlowRecord],
    ) -> JoinResult:
        """Aggregate one snapshot.  User IPs are never retained — the
        origin is the ISP's country code, per the paper's ethics setup."""
        result = JoinResult(
            isp_name=isp_name, origin_country=origin_country, day=day
        )
        for record in records:
            tracker_ip = self._matcher.match(record.dst_ip, record.timestamp)
            if tracker_ip is None:
                tracker_ip = self._matcher.match(
                    record.src_ip, record.timestamp
                )
            if tracker_ip is None:
                result.unmatched_flows += 1
                continue
            result.matched_flows += 1
            if record.is_web:
                result.web_flows += 1
            if record.is_encrypted:
                result.encrypted_flows += 1
            result.per_tracker_ip[tracker_ip] = (
                result.per_tracker_ip.get(tracker_ip, 0) + 1
            )
            destination = self._located(tracker_ip) or "unknown"
            result.destinations[destination] = (
                result.destinations.get(destination, 0) + 1
            )
        return result
