"""Columnar NetFlow batches and the vectorized tracker join.

A :data:`FLOW_SCHEMA` table packs one snapshot's sampled flow records
into struct-backed columns — ~40 bytes per flow against the several
hundred of a :class:`~repro.netflow.records.FlowRecord` dataclass —
with both endpoints dictionary-encoded (an ISP snapshot re-uses a few
thousand distinct addresses across millions of flows).

:func:`join_table` reproduces :class:`~repro.netflow.join.
TrackerFlowJoin` column-at-a-time: the salted-hash membership probe and
the geolocation run once per *distinct* address (a gather table over
the dictionary codes), and the per-row residue is two integer window
comparisons plus counter bumps.  The equivalence tests lock its
:class:`~repro.netflow.join.JoinResult` equal to the object path's,
field for field.

Raises
------
:class:`repro.errors.ColumnarError` via the table layer on schema
misuse; :class:`repro.errors.NetFlowError` propagates from record
validation when decoding back to objects.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.columnar.schema import ColumnKind, Schema
from repro.columnar.table import ColumnarTable
from repro.netflow.join import HashedIPMatcher, JoinResult
from repro.netflow.records import WEB_PORTS, FlowRecord

#: one exported (sampled) flow per row, in canonical column order
FLOW_SCHEMA = Schema.of(
    ("timestamp", ColumnKind.F64),
    ("router_id", ColumnKind.U16),
    ("interface_id", ColumnKind.U16),
    ("protocol", ColumnKind.U8),
    ("src_ip", ColumnKind.DICT),
    ("dst_ip", ColumnKind.DICT),
    ("src_port", ColumnKind.U16),
    ("dst_port", ColumnKind.U16),
    ("tos", ColumnKind.U8),
    ("sampled_packets", ColumnKind.U32),
    ("sampled_bytes", ColumnKind.U64),
)


def flow_table(records: Iterable[FlowRecord]) -> ColumnarTable:
    """Pack flow records into a :data:`FLOW_SCHEMA` batch."""
    table = ColumnarTable(FLOW_SCHEMA)
    for record in records:
        table.append((
            record.timestamp,
            record.router_id,
            record.interface_id,
            record.protocol,
            record.src_ip,
            record.dst_ip,
            record.src_port,
            record.dst_port,
            record.tos,
            record.sampled_packets,
            record.sampled_bytes,
        ))
    return table


def table_to_records(table: ColumnarTable) -> List[FlowRecord]:
    """Decode a flow table back into record objects (reference path).

    Raises :class:`repro.errors.NetFlowError` when a row fails record
    validation — a table assembled through :func:`flow_table` never
    does.
    """
    return [FlowRecord(*row) for row in table.iter_rows()]


def join_table(
    matcher: HashedIPMatcher,
    locate,
    isp_name: str,
    origin_country: str,
    day: float,
    table: ColumnarTable,
) -> JoinResult:
    """Join one snapshot's flow table against the tracker matcher.

    Byte-identical aggregation to :meth:`repro.netflow.join.
    TrackerFlowJoin.join` over the same records: user IPs are never
    retained, matching checks the destination endpoint first and the
    source as fallback, validity windows honour the matcher's slack.

    The hash probe, the validity window, and the destination country
    are resolved once per distinct address (dictionary code) before the
    row loop; per row only the window bounds are compared against the
    flow timestamp.
    """
    result = JoinResult(
        isp_name=isp_name, origin_country=origin_country, day=day
    )
    dst_column = table.column("dst_ip")
    src_column = table.column("src_ip")

    # Per-distinct pre-resolution: (tracker_ip, window) per code.
    dst_probes = [matcher.probe(addr) for addr in dst_column.values()]
    src_probes = [matcher.probe(addr) for addr in src_column.values()]
    located = {}

    timestamps = table.column("timestamp")
    src_ports = table.column("src_port")
    dst_ports = table.column("dst_port")
    dst_codes = dst_column.codes
    src_codes = src_column.codes
    window_valid = matcher.window_valid
    for index in range(len(table)):
        at = timestamps[index]
        tracker_ip, window = dst_probes[dst_codes[index]]
        if tracker_ip is None or not window_valid(window, at):
            tracker_ip, window = src_probes[src_codes[index]]
            if tracker_ip is None or not window_valid(window, at):
                result.unmatched_flows += 1
                continue
        result.matched_flows += 1
        src_port = src_ports[index]
        dst_port = dst_ports[index]
        if src_port in WEB_PORTS or dst_port in WEB_PORTS:
            result.web_flows += 1
        if src_port == 443 or dst_port == 443:
            result.encrypted_flows += 1
        result.per_tracker_ip[tracker_ip] = (
            result.per_tracker_ip.get(tracker_ip, 0) + 1
        )
        if tracker_ip not in located:
            located[tracker_ip] = locate(tracker_ip) or "unknown"
        destination = located[tracker_ip]
        result.destinations[destination] = (
            result.destinations.get(destination, 0) + 1
        )
    return result
