"""NetFlow v9-style flow records (Sect. 7.2).

The paper's daily snapshots carry, per flow: collection timestamp,
exporting router and interface, layer-4 protocol, source and destination
IPs and ports, type-of-service, and the *sampled* packet and byte
counts.  :class:`FlowRecord` carries exactly those fields.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetFlowError
from repro.netbase.addr import IPAddress

PROTO_TCP = 6
PROTO_UDP = 17

WEB_PORTS = (80, 443)


@dataclass(frozen=True)
class FlowRecord:
    """One exported (sampled) flow.

    This object is the **reference representation** of a flow; the
    columnar path packs the same eleven fields into a
    :data:`repro.netflow.columns.FLOW_SCHEMA` table and
    :func:`repro.netflow.columns.table_to_records` round-trips back
    through this constructor, re-running the same validation.

    Raises :class:`repro.errors.NetFlowError` on construction for an
    unsupported layer-4 protocol, an out-of-range port, or non-positive
    sampled counters.
    """

    timestamp: float          # day number + fraction
    router_id: int
    interface_id: int
    protocol: int
    src_ip: IPAddress
    dst_ip: IPAddress
    src_port: int
    dst_port: int
    tos: int
    sampled_packets: int
    sampled_bytes: int

    def __post_init__(self) -> None:
        if self.protocol not in (PROTO_TCP, PROTO_UDP):
            raise NetFlowError(f"unsupported protocol {self.protocol}")
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 65535:
                raise NetFlowError(f"port {port} out of range")
        if self.sampled_packets <= 0 or self.sampled_bytes <= 0:
            raise NetFlowError("sampled counters must be positive")

    @property
    def is_web(self) -> bool:
        """Web traffic: port 80 or 443 on either side."""
        return self.src_port in WEB_PORTS or self.dst_port in WEB_PORTS

    @property
    def is_encrypted(self) -> bool:
        """Port-443 traffic (TLS, or QUIC over UDP)."""
        return 443 in (self.src_port, self.dst_port)

    @property
    def external_ip(self) -> IPAddress:
        """The non-subscriber side, by convention the destination.

        The synthesizer emits user→server flows; the join still checks
        both sides, as the paper's hashed matcher does.
        """
        return self.dst_ip
