"""ISP-scale substrate: NetFlow v9-style records, packet-sampled export,
the four European ISP profiles of Sect. 7, per-subscriber traffic
synthesis, and the privacy-preserving tracker-IP join."""

from repro.netflow.records import FlowRecord, PROTO_TCP, PROTO_UDP
from repro.netflow.isps import ISPProfile, default_isps
from repro.netflow.exporter import FlowExporter, PacketSampler
from repro.netflow.traffic import TrafficSynthesizer
from repro.netflow.join import HashedIPMatcher, TrackerFlowJoin

__all__ = [
    "FlowRecord",
    "PROTO_TCP",
    "PROTO_UDP",
    "ISPProfile",
    "default_isps",
    "FlowExporter",
    "PacketSampler",
    "TrafficSynthesizer",
    "HashedIPMatcher",
    "TrackerFlowJoin",
]
