"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``report``
    Run the full pipeline and print every regenerated table and figure
    plus the paper-vs-measured block.
``table N`` / ``figure N``
    Regenerate one artifact (e.g. ``table 5``, ``figure 7``).
``summary``
    Print the headline paper-vs-measured metrics as JSON.
``world``
    Build the world and print its population statistics.
``export``
    Run the pipeline and export its products (request log JSONL,
    tracker-IP inventory JSON, continent sankey CSV) into a directory.
``run``
    Execute the pipeline through the :mod:`repro.runtime` engine —
    sharded across ``--workers`` processes, replayed from ``--cache-dir``
    when warm — and print headline numbers plus per-stage wall-time and
    cache-hit counters.  With ``--trace out.json`` the run records a
    full span tree, writes the provenance manifest to ``out.json`` and
    prints a text flamegraph of where the time went; with
    ``--trace-events out.json`` it exports the same span tree as
    Chrome trace-event JSON (load it in Perfetto / ``chrome://tracing``)
    — on ``--workers N`` runs the trace carries the workers' stitched
    span trees as real process tracks.  With ``--profile out.json`` the
    shard workers sample their own stacks and the merged profile lands
    as speedscope JSON (load it at https://www.speedscope.app);
    ``--profile-report out.json`` writes the per-stage hot-function
    report instead (or as well).
``obs``
    Inspect the run ledger (``<cache_dir>/ledger.jsonl``) that every
    cached engine run appends to: ``list`` / ``show`` the records,
    ``diff`` two of them with every metric delta classified as
    config-driven, code-driven or unexplained drift, ``check`` a record
    against a budgets file (CI gate), get/set the ``baseline``
    selector, and render a saved speedscope ``profile`` as a terminal
    table or flame view.  See ``docs/ledger.md``.
``serve``
    Run the always-on study service: submit configs over
    ``POST /studies``, follow per-job progress as Server-Sent Events,
    and query the run ledger (list/show/diff/check/baseline) over
    HTTP — all against one shared artifact cache, so repeat
    submissions replay warm.  ``--port 0`` picks an ephemeral port
    (printed on the ready line).  See ``docs/service.md``.

Every command accepts ``--preset small|medium|paper`` and ``--seed N``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Callable, Dict, Optional, Sequence

from repro import Study, WorldConfig
from repro.analysis import figures as F
from repro.analysis import tables as T
from repro.analysis.report import (
    experiment_summary,
    full_report,
    paper_vs_measured,
)
from repro.errors import ReproError

_TABLES: Dict[int, Callable] = {
    1: T.table1, 2: T.table2, 3: T.table3, 4: T.table4, 5: T.table5,
    6: T.table6, 7: T.table7, 8: T.table8, 9: T.table9,
}
_FIGURES: Dict[int, Callable] = {
    2: F.figure2, 3: F.figure3, 4: F.figure4, 5: F.figure5, 6: F.figure6,
    7: F.figure7, 8: F.figure8, 9: F.figure9, 10: F.figure10,
    11: F.figure11, 12: F.figure12,
}

_PRESETS = {
    "small": WorldConfig.small,
    "medium": WorldConfig.medium,
    "paper": WorldConfig.paper_scale,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Tracing Cross Border Web Tracking' "
        "(IMC 2018).",
    )
    parser.add_argument(
        "--preset", choices=sorted(_PRESETS), default="small",
        help="world size preset (default: small)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="world seed override"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("report", help="print every table and figure")
    commands.add_parser("summary", help="paper-vs-measured metrics as JSON")
    commands.add_parser("world", help="print world population statistics")

    table_command = commands.add_parser("table", help="regenerate one table")
    table_command.add_argument("number", type=int, choices=sorted(_TABLES))

    figure_command = commands.add_parser(
        "figure", help="regenerate one figure"
    )
    figure_command.add_argument("number", type=int, choices=sorted(_FIGURES))

    export_command = commands.add_parser(
        "export", help="export pipeline products to a directory"
    )
    export_command.add_argument("directory", type=pathlib.Path)

    run_command = commands.add_parser(
        "run", help="execute the pipeline through the runtime engine"
    )
    run_command.add_argument(
        "--workers", type=int, default=1,
        help="process workers for shard fan-out (default: 1, inline)",
    )
    run_command.add_argument(
        "--cache-dir", type=pathlib.Path, default=None,
        help="artifact cache directory (default: no cache)",
    )
    run_command.add_argument(
        "--json", action="store_true",
        help="emit headline numbers and metrics as JSON",
    )
    run_command.add_argument(
        "--metrics-out", type=pathlib.Path, default=None,
        help="also write the per-stage metrics to this JSON file",
    )
    run_command.add_argument(
        "--trace", type=pathlib.Path, default=None, metavar="OUT",
        help="record spans and write the provenance manifest to OUT",
    )
    run_command.add_argument(
        "--trace-events", type=pathlib.Path, default=None, metavar="OUT",
        help="record spans and export them as Chrome trace-event JSON "
        "(Perfetto / chrome://tracing loadable) to OUT",
    )
    run_command.add_argument(
        "--profile", type=pathlib.Path, default=None, metavar="OUT",
        help="sample shard stacks and write the merged profile as "
        "speedscope JSON (speedscope.app loadable) to OUT",
    )
    run_command.add_argument(
        "--profile-hz", type=float, default=None, metavar="HZ",
        help="stack sampling rate (default: 97; implies profiling)",
    )
    run_command.add_argument(
        "--profile-report", type=pathlib.Path, default=None, metavar="OUT",
        help="write the per-stage hot-function report "
        "(schema repro.obs/profile-report/v1) to OUT",
    )

    obs_command = commands.add_parser(
        "obs", help="inspect the run ledger: list/show/diff/check/baseline"
    )
    obs_command.add_argument(
        "--cache-dir", type=pathlib.Path, default=pathlib.Path(".repro-cache"),
        help="cache directory whose ledger.jsonl to read "
        "(default: .repro-cache)",
    )
    obs_command.add_argument(
        "--ledger", type=pathlib.Path, default=None,
        help="explicit ledger file (overrides --cache-dir)",
    )
    obs_subcommands = obs_command.add_subparsers(
        dest="obs_command", required=True
    )
    obs_subcommands.add_parser("list", help="one line per ledger record")
    obs_show = obs_subcommands.add_parser(
        "show", help="print one record as JSON"
    )
    obs_show.add_argument("selector", nargs="?", default="latest")
    obs_diff = obs_subcommands.add_parser(
        "diff", help="classify every metric delta between two records "
        "(exit 1 on unexplained drift)",
    )
    obs_diff.add_argument("run_a", help="selector for the left-hand run")
    obs_diff.add_argument(
        "run_b", nargs="?", default="latest",
        help="selector for the right-hand run (default: latest)",
    )
    obs_diff.add_argument(
        "--json", action="store_true", help="emit the diff as JSON"
    )
    obs_diff.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="also write the JSON diff report to this file",
    )
    obs_check = obs_subcommands.add_parser(
        "check", help="fail (exit 1) when a record leaves its budgets"
    )
    obs_check.add_argument(
        "--budgets", type=pathlib.Path, required=True,
        help="budgets file (schema repro.obs/budgets/v1)",
    )
    obs_check.add_argument(
        "--run", default="latest", help="record selector (default: latest)"
    )
    obs_check.add_argument(
        "--json", action="store_true", help="emit violations as JSON"
    )
    obs_baseline = obs_subcommands.add_parser(
        "baseline", help="show or set the baseline selector's target"
    )
    obs_baseline.add_argument(
        "selector", nargs="?", default=None,
        help="record to mark as baseline (omit to show the current one)",
    )
    obs_profile = obs_subcommands.add_parser(
        "profile", help="render a saved speedscope profile as text"
    )
    obs_profile.add_argument(
        "path", type=pathlib.Path,
        help="speedscope JSON file (e.g. from `repro run --profile`)",
    )
    obs_profile.add_argument(
        "--top", type=int, default=10,
        help="rows in the self-time table (default: 10)",
    )
    obs_profile.add_argument(
        "--flame", action="store_true",
        help="print the stack tree (hottest branches first) instead",
    )

    serve_command = commands.add_parser(
        "serve", help="run the always-on study service (HTTP + SSE)"
    )
    serve_command.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    serve_command.add_argument(
        "--port", type=int, default=8377,
        help="port to bind; 0 picks an ephemeral port (default: 8377)",
    )
    serve_command.add_argument(
        "--cache-dir", type=pathlib.Path, default=pathlib.Path(".repro-cache"),
        help="shared artifact cache + ledger directory "
        "(default: .repro-cache)",
    )
    serve_command.add_argument(
        "--workers", type=int, default=1,
        help="process workers per job's engine run (default: 1, inline)",
    )
    serve_command.add_argument(
        "--jobs", type=int, default=1,
        help="concurrent job limit (default: 1)",
    )
    serve_command.add_argument(
        "--queue-limit", type=int, default=8,
        help="max queued submissions before 503 (default: 8)",
    )
    serve_command.add_argument(
        "--budgets", type=pathlib.Path, default=None,
        help="budgets file backing GET /runs/<selector>/check",
    )
    serve_command.add_argument(
        "--log", type=pathlib.Path, default=None, metavar="OUT",
        help="append one JSONL line per request to OUT",
    )
    return parser


def _make_config(args: argparse.Namespace) -> WorldConfig:
    factory = _PRESETS[args.preset]
    return factory(seed=args.seed) if args.seed is not None else factory()


def _make_study(args: argparse.Namespace) -> Study:
    return Study(_make_config(args))


def _command_run(args: argparse.Namespace) -> str:
    from repro.io import run_metrics_to_json
    from repro.obs import (
        DEFAULT_HZ,
        Tracer,
        write_manifest,
        write_speedscope,
        write_trace_events,
    )
    from repro.obs.persist import atomic_write_json
    from repro.runtime import run_study

    cache_dir = str(args.cache_dir) if args.cache_dir is not None else None
    traced = args.trace is not None or args.trace_events is not None
    tracer = Tracer() if traced else None
    profiling = (
        args.profile is not None
        or args.profile_hz is not None
        or args.profile_report is not None
    )
    profile_hz = (
        args.profile_hz if args.profile_hz is not None else DEFAULT_HZ
    ) if profiling else None
    run = run_study(
        _make_config(args),
        workers=args.workers,
        cache_dir=cache_dir,
        tracer=tracer,
        profile_hz=profile_hz,
    )
    if args.trace is not None:
        write_manifest(run.manifest, args.trace)
    if args.trace_events is not None:
        write_trace_events(tracer.spans, args.trace_events)
    if args.profile is not None:
        write_speedscope(
            run.merged_profile(),
            args.profile,
            name=f"repro run --preset {args.preset}",
        )
    if args.profile_report is not None:
        atomic_write_json(run.profile_report(), args.profile_report)
    if args.metrics_out is not None:
        # Run totals come from the registry fold (RunResult.cache_hits /
        # cache_misses) — the CLI never sums per-stage rows itself.
        run_metrics_to_json(
            run.metrics_rows(),
            args.metrics_out,
            workers=args.workers,
            preset=args.preset,
            cache_hits=run.cache_hits,
            cache_misses=run.cache_misses,
        )
    if args.json:
        payload = {
            "table2": run.table2_counts(),
            "eu28_destination_regions": run.eu28_destination_regions(),
            "sensitive": run.sensitive_summary(),
            "metrics": run.metrics_rows(),
            "cache_hits": run.cache_hits,
            "cache_misses": run.cache_misses,
        }
        if profiling:
            payload["profile"] = run.profile_report()
        return json.dumps(payload, indent=1, sort_keys=True)
    lines = [run.metrics_report(), ""]
    totals = run.table2_counts()["total"]
    lines.append(
        f"tracking requests: {totals['total_requests']:,} "
        f"across {totals['fqdns']} FQDNs"
    )
    shares = run.eu28_destination_regions()
    confined = shares.get("EU 28", 0.0)
    lines.append(f"EU28-confined tracking flows: {confined:.1f}%")
    if traced:
        lines.extend(["", run.trace_report()])
    if profiling:
        lines.extend(["", run.result.profile_table(top=10)])
    if args.trace is not None:
        lines.append(f"\nmanifest written to {args.trace}")
    if args.trace_events is not None:
        lines.append(f"trace events written to {args.trace_events}")
    if args.profile is not None:
        lines.append(f"profile written to {args.profile}")
    if args.profile_report is not None:
        lines.append(f"profile report written to {args.profile_report}")
    if run.ledger_record is not None:
        lines.append(
            f"ledger: appended run {run.ledger_record['run_id']} "
            f"(seq {run.ledger_record['seq']})"
        )
    return "\n".join(lines)


def _obs_ledger_path(args: argparse.Namespace) -> str:
    from repro.obs import ledger_path

    if args.ledger is not None:
        return str(args.ledger)
    return ledger_path(str(args.cache_dir))


def _obs_list(records) -> str:
    lines = [
        f"{'seq':>4} {'run_id':<16} {'kind':<5} {'digest':<12} "
        f"{'workers':>7} {'wall':>9}"
    ]
    for record in records:
        digest = record.get("config", {}).get("digest", "")[:12]
        wall = sum(
            float(stage.get("wall_s", 0.0))
            for stage in record.get("stages", ())
        )
        lines.append(
            f"{record['seq']:>4} {record['run_id']:<16} "
            f"{record['kind']:<5} {digest:<12} "
            f"{record.get('workers', '-'):>7} {wall:>8.3f}s"
        )
    return "\n".join(lines)


def _command_obs(args: argparse.Namespace) -> int:
    """The ``repro obs`` family; returns the process exit code."""
    from repro.errors import ObservabilityError
    from repro.obs import (
        check_budgets,
        diff_records,
        load_budgets,
        load_ledger,
        read_baseline,
        render_budget_text,
        render_diff_text,
        select_record,
        write_baseline,
    )
    from repro.obs.persist import atomic_write_json

    if args.obs_command == "profile":
        # Renders a saved speedscope file — no ledger involved.
        from repro.obs import load_speedscope

        try:
            profile = load_speedscope(args.path)
        except ObservabilityError as exc:
            print(f"repro obs: {exc}", file=sys.stderr)
            return 1
        if args.flame:
            print(profile.render_flame())
        else:
            print(profile.render_table(top=args.top))
        return 0

    path = _obs_ledger_path(args)
    try:
        records = load_ledger(path)
        baseline_id = read_baseline(path)
        if args.obs_command == "list":
            print(_obs_list(records))
        elif args.obs_command == "show":
            record = select_record(records, args.selector, baseline_id)
            print(json.dumps(record, indent=1, sort_keys=True))
        elif args.obs_command == "diff":
            record_a = select_record(records, args.run_a, baseline_id)
            record_b = select_record(records, args.run_b, baseline_id)
            diff = diff_records(record_a, record_b)
            if args.out is not None:
                atomic_write_json(diff.to_dict(), args.out)
            if args.json:
                print(json.dumps(diff.to_dict(), indent=1, sort_keys=True))
            else:
                print(render_diff_text(diff))
            return 1 if diff.unexplained() else 0
        elif args.obs_command == "check":
            record = select_record(records, args.run, baseline_id)
            budgets = load_budgets(args.budgets)
            violations = check_budgets(record, budgets)
            if args.json:
                print(json.dumps(
                    {
                        "run_id": record.get("run_id"),
                        "violations": [v.to_dict() for v in violations],
                    },
                    indent=1, sort_keys=True,
                ))
            else:
                print(render_budget_text(record, violations))
            return 1 if violations else 0
        elif args.obs_command == "baseline":
            if args.selector is None:
                if baseline_id is None:
                    print(
                        "baseline: unset "
                        "(the selector falls back to the first record)"
                    )
                else:
                    print(f"baseline: {baseline_id}")
            else:
                record = select_record(records, args.selector, baseline_id)
                write_baseline(path, record["run_id"])
                print(f"baseline set to {record['run_id']}")
    except ObservabilityError as exc:
        # Degrade gracefully — a missing ledger, an unresolvable
        # selector or a corrupt line is a diagnosable message on
        # stderr, never a traceback.
        print(f"repro obs: {exc}", file=sys.stderr)
        return 1
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve import StudyServer

    server = StudyServer(
        cache_dir=str(args.cache_dir),
        host=args.host,
        port=args.port,
        workers=args.workers,
        job_limit=args.jobs,
        queue_limit=args.queue_limit,
        budgets=str(args.budgets) if args.budgets is not None else None,
        log_path=str(args.log) if args.log is not None else None,
    )

    def ready(ready_server: StudyServer) -> None:
        print(
            f"repro serve: listening on "
            f"http://{ready_server.host}:{ready_server.port} "
            f"(cache: {args.cache_dir})",
            flush=True,
        )

    try:
        server.run(on_ready=ready)
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    return 0


def _command_world(study: Study) -> str:
    world = study.world
    lines = [
        f"seed:            {world.config.seed}",
        f"organizations:   {len(world.organizations)}",
        f"servers:         {len(world.fleet.servers())}",
        f"tracking FQDNs:  {len(world.fleet.tracking_fqdns())}",
        f"publishers:      {len(world.publishers)}",
        f"panel users:     {len(world.users)}",
        f"probes:          {len(world.probes)}",
        f"cloud providers: {len(world.clouds)}",
        f"ISPs:            {', '.join(isp.name for isp in world.isps)}",
    ]
    return "\n".join(lines)


def _command_export(study: Study, directory: pathlib.Path) -> str:
    from repro.io import (
        inventory_to_json,
        requests_to_jsonl,
        sankey_to_csv,
        summary_to_json,
    )

    directory.mkdir(parents=True, exist_ok=True)
    n_requests = requests_to_jsonl(
        study.visit_log.requests, directory / "requests.jsonl"
    )
    inventory_to_json(study.inventory, directory / "tracker_ips.json")
    sankey = study.confinement().continent_sankey(study.tracking_requests())
    n_edges = sankey_to_csv(sankey, directory / "continent_sankey.csv")
    summary_to_json(experiment_summary(study), directory / "summary.json")
    return (
        f"wrote {n_requests} requests, {len(study.inventory)} tracker IPs, "
        f"{n_edges} sankey edges and the summary to {directory}/"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "obs":
            return _command_obs(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "run":
            print(_command_run(args))
            return 0
        study = _make_study(args)
        if args.command == "report":
            print(full_report(study))
        elif args.command == "summary":
            print(
                json.dumps(experiment_summary(study), indent=1, sort_keys=True)
            )
            print("\n" + paper_vs_measured(study), file=sys.stderr)
        elif args.command == "world":
            print(_command_world(study))
        elif args.command == "table":
            print(_TABLES[args.number](study)["text"])
        elif args.command == "figure":
            print(_FIGURES[args.number](study)["text"])
        elif args.command == "export":
            print(_command_export(study, args.directory))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
