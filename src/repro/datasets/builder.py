"""World builder: one seed → the complete simulated world.

Construction order matters and is fixed here:

1. address plan + cloud catalog pools,
2. organizations and their server fleets / DNS zones,
3. publishers and panel users,
4. passive DNS + the DNS mapping service,
5. ISP profiles and their traffic synthesizers (this also allocates the
   ISPs' eyeball address pools),
6. the geolocation substrate: probe mesh, active engine, and the two
   commercial databases (built *after* every prefix exists, so each has
   an entry for the whole world),
7. the synthetic filter lists,
8. background resolutions: the rest of the world's resolvers keep
   resolving tracking FQDNs before, during, and after the panel window,
   which is what gives passive DNS its completeness advantage and keeps
   the (domain, IP) validity windows alive through the ISP snapshot days.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cloud.providers import CloudCatalog
from repro.config import SNAPSHOT_DAYS, WorldConfig
from repro.dnssim.passive import PassiveDNSDatabase
from repro.geodata.countries import CountryRegistry, default_registry
from repro.geoloc.commercial import CommercialGeoDatabase, derive_ip_api
from repro.geoloc.ipmap import IPmapEngine
from repro.geoloc.probes import ProbeMesh
from repro.geoloc.truth import GroundTruthOracle
from repro.netbase.allocator import AddressPlan
from repro.netbase.asn import ASRegistry
from repro.netflow.isps import ISPProfile, default_isps
from repro.netflow.traffic import TrafficSynthesizer
from repro.util.rng import RngStreams
from repro.web.browser import MappingService
from repro.web.deployment import Fleet, FleetBuilder
from repro.web.filterlists import FilterList, build_filter_lists
from repro.web.organizations import Organization, OrganizationFactory
from repro.web.publishers import Publisher, PublisherFactory
from repro.web.users import PanelUser, build_panel

#: background resolutions run through this simulation day, modelling the
#: continued collection (mid-Jan → July 2018) the paper describes.
BACKGROUND_END_DAY = max(SNAPSHOT_DAYS.values()) + 10.0


@dataclass
class World:
    """Everything the study pipeline needs, fully constructed."""

    config: WorldConfig
    registry: CountryRegistry
    streams: RngStreams
    plan: AddressPlan
    as_registry: ASRegistry
    clouds: CloudCatalog
    organizations: List[Organization]
    fleet: Fleet
    publishers: List[Publisher]
    users: List[PanelUser]
    pdns: PassiveDNSDatabase
    mapping: MappingService
    probes: ProbeMesh
    oracle: GroundTruthOracle
    ipmap: IPmapEngine
    maxmind: CommercialGeoDatabase
    ip_api: CommercialGeoDatabase
    easylist: FilterList
    easyprivacy: FilterList
    isps: List[ISPProfile]
    synthesizers: Dict[str, TrafficSynthesizer]

    def org_seat(self, org_name: str) -> Optional[str]:
        """Legal-seat country of an organization, if known."""
        for org in self.organizations:
            if org.name == org_name:
                return org.legal_country
        return None


def build_world(config: Optional[WorldConfig] = None) -> World:
    """Construct the full simulated world for ``config`` (deterministic)."""
    config = config or WorldConfig.medium()
    registry = default_registry()
    streams = RngStreams(config.seed)

    plan = AddressPlan()
    as_registry = ASRegistry()
    clouds = CloudCatalog()
    clouds.attach_plan(plan)

    organizations = OrganizationFactory(config.ecosystem, streams).build()
    fleet = FleetBuilder(
        registry=registry,
        plan=plan,
        as_registry=as_registry,
        clouds=clouds,
        streams=streams,
        ipv6_share=config.ecosystem.ipv6_share,
    ).build(organizations)

    publishers = PublisherFactory(config.ecosystem, fleet, streams).build()
    users = build_panel(config.panel, registry, streams)

    pdns = PassiveDNSDatabase()
    mapping = MappingService(fleet, registry, pdns, streams)

    isps = default_isps()
    synthesizers = {
        isp.name: TrafficSynthesizer(
            isp=isp,
            fleet=fleet,
            mapping=mapping,
            plan=plan,
            config=config.isp,
            streams=streams,
        )
        for isp in isps
    }

    owner_seats: Dict[str, str] = {
        org.name: org.legal_country for org in organizations
    }
    for provider in clouds.providers():
        owner_seats[provider.name] = provider.legal_country
    for isp in isps:
        owner_seats[isp.name] = isp.country

    maxmind = CommercialGeoDatabase.build_maxmind_like(
        plan=plan,
        owner_seats=owner_seats,
        legal_seat_bias=config.geolocation.commercial_legal_seat_bias,
        streams=streams,
    )
    ip_api = derive_ip_api(
        primary=maxmind,
        plan=plan,
        agreement=config.geolocation.ip_api_agreement,
        streams=streams,
    )

    probes = ProbeMesh.build(registry, config.geolocation, streams)
    oracle = GroundTruthOracle(fleet, plan, registry)
    ipmap = IPmapEngine(
        mesh=probes,
        oracle=oracle,
        registry=registry,
        config=config.geolocation,
        streams=streams,
    )

    easylist, easyprivacy = build_filter_lists(fleet, streams)

    world = World(
        config=config,
        registry=registry,
        streams=streams,
        plan=plan,
        as_registry=as_registry,
        clouds=clouds,
        organizations=organizations,
        fleet=fleet,
        publishers=publishers,
        users=users,
        pdns=pdns,
        mapping=mapping,
        probes=probes,
        oracle=oracle,
        ipmap=ipmap,
        maxmind=maxmind,
        ip_api=ip_api,
        easylist=easylist,
        easyprivacy=easyprivacy,
        isps=isps,
        synthesizers=synthesizers,
    )
    run_background_resolutions(world)
    return world


#: per-process world memo: config digest → built world.  Worker processes
#: execute many shards against the same world; rebuilding it per shard
#: would dwarf the shard work itself.  Serve jobs call this from worker
#: threads too, so the memo is lock-guarded.
_WORLD_MEMO: Dict[str, World] = {}
_WORLD_MEMO_LOCK = threading.Lock()


def cached_build_world(config: WorldConfig) -> World:
    """Build (or reuse) the world for ``config`` within this process.

    Keyed on the config's content digest, so two equal-but-distinct
    :class:`WorldConfig` objects share one world.  Runtime stage tasks
    treat the world as read-only (see :mod:`repro.runtime.graph`),
    which is what makes the sharing safe.
    """
    digest = config.digest()
    with _WORLD_MEMO_LOCK:
        world = _WORLD_MEMO.get(digest)
        if world is None:
            world = build_world(config)
            _WORLD_MEMO[digest] = world
    return world


def run_background_resolutions(
    world: World,
    epochs: int = 5,
    countries_per_epoch: int = 4,
    draws_per_country: int = 4,
    end_day: float = BACKGROUND_END_DAY,
) -> int:
    """Feed passive DNS with the rest of the world's resolutions.

    For each tracking FQDN, in each of ``epochs`` time slices spanning
    day 0 through ``end_day``, a handful of resolver vantages around the
    world resolve the name several times.  This (a) surfaces endpoint
    IPs the panel never received — the Sect. 3.3 completeness gain —
    and (b) keeps (domain, IP) validity windows alive through the ISP
    snapshot days.

    Returns the number of resolutions performed.
    """
    rng = world.streams.get("background-dns")
    codes = world.registry.codes()
    mapping = world.mapping
    performed = 0
    epoch_length = end_day / epochs
    for deployed in world.fleet.tracking_fqdns():
        for epoch in range(epochs):
            day_lo = epoch * epoch_length
            for _ in range(countries_per_epoch):
                country = codes[rng.randrange(len(codes))]
                vantage = mapping.country_site(country)
                for _ in range(draws_per_country):
                    at = day_lo + rng.random() * epoch_length
                    mapping.resolve(deployed.fqdn, vantage, at)
                    performed += 1
    return performed
