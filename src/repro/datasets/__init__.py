"""Dataset construction: the seeded world builder and the background
resolution driver that feeds passive DNS beyond the panel's view."""

from repro.datasets.builder import World, build_world, run_background_resolutions

__all__ = ["World", "build_world", "run_background_resolutions"]
