"""Regeneration of the data behind the paper's figures (2–12).

Each ``figureN(study)`` returns the series the figure plots plus a
rendered ``"text"`` block.  Figure 1 (the IAB OpenRTB block diagram) is
illustrative; its content is the message flow implemented by
:mod:`repro.web.rtb`.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.pipeline import Study
from repro.geodata.regions import Region, region_of_country
from repro.util.cdf import EmpiricalCDF
from repro.util.tables import percent, render_table


def figure2(study: Study) -> Dict[str, Any]:
    """Fig. 2 — CDFs of third-party requests per website."""
    per_site = study.classification.per_site_counts()
    tracking = [counts[0] for counts in per_site.values() if counts[0] > 0]
    clean = [counts[1] for counts in per_site.values() if counts[1] > 0]
    total = [sum(counts) for counts in per_site.values()]
    cdfs = {
        "clean_only": EmpiricalCDF(clean) if clean else None,
        "ad_tracking_only": EmpiricalCDF(tracking) if tracking else None,
        "all_third_party": EmpiricalCDF(total) if total else None,
    }
    rows = []
    for label, cdf in cdfs.items():
        if cdf is None:
            continue
        summary = cdf.summary()
        rows.append(
            [label, int(summary["n"]), summary["median"], summary["p90"],
             round(summary["mean"], 1)]
        )
    text = render_table(
        ["Series", "# Sites", "Median req/site", "p90", "Mean"],
        rows,
        title="Figure 2: Third-party requests per website (CDF summary).",
    )
    return {**cdfs, "text": text}


def figure3(study: Study, k: int = 20) -> Dict[str, Any]:
    """Fig. 3 — top-k TLDs of ad+tracking flows, ABP vs SEMI counts."""
    top = study.classification.top_tlds(k)
    rows = [
        [tld, abp_count, semi_count, abp_count + semi_count]
        for tld, abp_count, semi_count in top
    ]
    text = render_table(
        ["TLD", "ABP", "SEMI", "Total"],
        rows,
        title=f"Figure 3: Top {k} TLDs of ad+tracking domains.",
    )
    return {"top_tlds": top, "text": text}


def figure4(study: Study) -> Dict[str, Any]:
    """Fig. 4 — domains behind each tracking IP."""
    inventory = study.inventory
    sample = inventory.domains_per_ip_sample()
    cdf = EmpiricalCDF(sample) if sample else None
    values = {
        "single_domain_request_share_pct":
            inventory.single_domain_request_share_pct(),
        "multi_domain_ip_share_pct": inventory.multi_domain_ip_share_pct(),
        "n_ips": len(inventory),
        "cdf": cdf,
    }
    text = render_table(
        ["Metric", "Value"],
        [
            ["# tracking IPs", values["n_ips"]],
            ["requests served by single-TLD IPs",
             percent(values["single_domain_request_share_pct"])],
            ["IPs serving >1 domain",
             percent(values["multi_domain_ip_share_pct"])],
            ["max domains behind one IP", int(cdf.max) if cdf else 0],
        ],
        title="Figure 4: Domains detected behind each tracking IP.",
    )
    return {**values, "text": text}


def figure5(study: Study, threshold: int = 10) -> Dict[str, Any]:
    """Fig. 5 — IPs hosting many ad+tracking domains, and where they are."""
    heavy = study.inventory.heavy_multi_domain_ips(threshold)
    locate = study.geolocation.reference
    rows = []
    by_region: Dict[str, int] = {}
    for record in heavy:
        country = locate(record.address) or "unknown"
        region = (
            Region.UNKNOWN.value
            if country == "unknown"
            else region_of_country(country).value
        )
        by_region[region] = by_region.get(region, 0) + 1
        rows.append(
            [str(record.address), record.n_domains_behind, country, region]
        )
    text = render_table(
        ["IP", "# Domains", "Country", "Region"],
        rows,
        title=f"Figure 5: IPs hosting {threshold}+ ad+tracking domains.",
    )
    return {"heavy_ips": heavy, "by_region": by_region, "text": text}


def figure6(study: Study) -> Dict[str, Any]:
    """Fig. 6 — flow of ad+tracking between continents (Sankey)."""
    analyzer = study.confinement()
    tracking = study.tracking_requests()
    sankey = analyzer.continent_sankey(tracking)
    destination_shares = sankey.destination_shares()
    per_region = analyzer.per_region_confinement(tracking)
    rows = [
        [origin, f"{sankey.origin_total(origin):,.0f}",
         percent(sankey.confinement(origin)),
         ", ".join(
             f"{dest}={share:.1f}%"
             for dest, share in sankey.top_destinations(origin, 3)
         )]
        for origin in sankey.origins()
    ]
    text = render_table(
        ["Origin region", "Flows", "Confinement", "Top destinations"],
        rows,
        title="Figure 6: Flow of ad+tracking between continents.",
    )
    return {
        "sankey": sankey,
        "destination_shares": destination_shares,
        "per_region_confinement": per_region,
        "text": text,
    }


def figure7(study: Study) -> Dict[str, Any]:
    """Fig. 7 — EU28 destination regions: MaxMind vs RIPE IPmap."""
    maxmind = study.eu28_destination_regions("MaxMind")
    ipmap = study.eu28_destination_regions("RIPE IPmap")
    regions = sorted(set(maxmind) | set(ipmap))
    rows = [
        [region, percent(maxmind.get(region, 0.0)),
         percent(ipmap.get(region, 0.0))]
        for region in regions
    ]
    text = render_table(
        ["Destination", "(a) MaxMind", "(b) RIPE IPmap"],
        rows,
        title="Figure 7: EU28 users' tracking-flow destinations under the "
        "two geolocation services.",
    )
    return {"maxmind": maxmind, "ipmap": ipmap, "text": text}


def figure8(study: Study) -> Dict[str, Any]:
    """Fig. 8 — country-level Sankey for EU28 origins."""
    analyzer = study.confinement()
    tracking = study.tracking_requests()
    sankey = analyzer.country_sankey(tracking, Region.EU28)
    national = {
        origin: sankey.confinement(origin) for origin in sankey.origins()
    }
    rows = [
        [origin, f"{sankey.origin_total(origin):,.0f}",
         percent(national[origin]),
         ", ".join(
             f"{dest}={share:.1f}%"
             for dest, share in sankey.top_destinations(origin, 3)
         )]
        for origin in sankey.origins()
    ]
    text = render_table(
        ["Origin", "Flows", "National confinement", "Top destinations"],
        rows,
        title="Figure 8: Flow of ad+tracking from EU28 countries.",
    )
    return {"sankey": sankey, "national_confinement": national, "text": text}


def figure9(study: Study) -> Dict[str, Any]:
    """Fig. 9 — sensitive-category shares of tracking flows."""
    tracking = study.tracking_requests()
    shares = study.sensitive.category_shares(tracking)
    sensitive_share = study.sensitive.sensitive_share_pct(tracking)
    identified = study.sensitive.identified_domains()
    rows = [
        [category, percent(share)]
        for category, share in sorted(shares.items(), key=lambda kv: -kv[1])
    ]
    text = render_table(
        ["Sensitive category", "Share of sensitive flows"],
        rows,
        title=(
            f"Figure 9: Sensitive categories ({len(identified)} domains, "
            f"{sensitive_share:.2f}% of tracking flows)."
        ),
    )
    return {
        "category_shares": shares,
        "sensitive_share_pct": sensitive_share,
        "n_sensitive_domains": len(identified),
        "text": text,
    }


def figure10(study: Study) -> Dict[str, Any]:
    """Fig. 10 — destination regions per sensitive category (EU28 users)."""
    tracking = study.tracking_requests()
    per_category = study.sensitive.category_destination_regions(
        tracking, study.geolocation.reference
    )
    rows = []
    for category, shares in sorted(per_category.items()):
        eu = shares.get(Region.EU28.value, 0.0)
        na = shares.get(Region.NORTH_AMERICA.value, 0.0)
        rows.append([category, percent(eu), percent(na), percent(100 - eu)])
    text = render_table(
        ["Category", "EU 28", "N. America", "Leakage out of EU28"],
        rows,
        title="Figure 10: Destination continent of sensitive tracking "
        "flows (EU28 users).",
    )
    return {"per_category": per_category, "text": text}


def figure11(study: Study) -> Dict[str, Any]:
    """Fig. 11 — per-country leakage of sensitive flows."""
    tracking = study.tracking_requests()
    leakage = study.sensitive.per_country_leakage(
        tracking, study.geolocation.reference
    )
    rows = [
        [country, total, leaked,
         percent(100.0 * leaked / total if total else 0.0)]
        for country, (leaked, total) in sorted(
            leakage.items(), key=lambda kv: -kv[1][1]
        )
    ]
    text = render_table(
        ["Country", "Sensitive flows", "Leaving the country", "Leakage"],
        rows,
        title="Figure 11: Sensitive tracking flows leaving the user's "
        "country (EU28).",
    )
    return {"leakage": leakage, "text": text}


def figure12(study: Study, snapshot: str = "April 4") -> Dict[str, Any]:
    """Fig. 12 — top destination countries per ISP."""
    reports = {
        isp.name: study.isp_study.run_snapshot(isp.name, snapshot)
        for isp in study.world.isps
    }
    rows = []
    for name, report in sorted(reports.items()):
        rows.append(
            [name,
             ", ".join(
                 f"{country}={share:.2f}%"
                 for country, share in report.top_destinations(5)
             )]
        )
    text = render_table(
        ["ISP", "Top-5 destination countries"],
        rows,
        title=f"Figure 12: Destination countries per ISP ({snapshot}).",
    )
    return {"reports": reports, "text": text}
