"""Paper-vs-measured reporting.

:func:`full_report` regenerates every table and figure from one study
and assembles a single text document; :func:`experiment_summary` returns
the headline paper-vs-measured pairs used by EXPERIMENTS.md and the
benchmark assertions.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis import figures as F
from repro.analysis import tables as T
from repro.core.pipeline import Study
from repro.geodata.regions import Region

#: the paper's headline values, used for paper-vs-measured reporting
PAPER_VALUES: Dict[str, float] = {
    "t1_users": 350,
    "t2_semi_over_abp": 0.80,
    "t3_commercial_country_agreement_pct": 96.13,
    "t3_ipmap_country_agreement_pct": 53.4,
    "f7_ipmap_eu28_pct": 84.93,
    "f7_ipmap_na_pct": 10.75,
    "f7_maxmind_eu28_pct": 33.16,
    "f7_maxmind_na_pct": 65.94,
    "t5_default_country_pct": 27.60,
    "t5_default_region_pct": 88.00,
    "t5_tld_country_pct": 66.13,
    "t5_tld_region_pct": 98.33,
    "f9_sensitive_share_pct": 2.89,
    "t8_eu28_min_pct": 74.7,
    "t8_eu28_max_pct": 93.1,
    "f4_single_domain_request_share_pct": 85.0,
    "pdns_additional_share_pct": 2.78,
}


def experiment_summary(study: Study) -> Dict[str, float]:
    """Measured values for every headline metric in :data:`PAPER_VALUES`."""
    classification = study.classification
    abp = classification.list_stats()
    semi = classification.semi_automatic_stats()
    t3 = study.geolocation.pairwise_agreement(study.inventory.addresses())
    ipmap = study.eu28_destination_regions("RIPE IPmap")
    maxmind = study.eu28_destination_regions("MaxMind")
    outcomes = {
        o.scenario: o
        for o in study.localization.scenario_table(study.tracking_requests())
    }
    from repro.core.localization import LocalizationScenario as S

    reports = study.isp_study.run_all(["April 4"])
    eu28_shares = [
        report.region_shares.get("EU 28", 0.0)
        for report in reports.values()
    ]
    return {
        "t1_users": float(study.visit_log.n_users()),
        "t2_semi_over_abp": (
            semi.total_requests / abp.total_requests
            if abp.total_requests
            else 0.0
        ),
        "t3_commercial_country_agreement_pct": t3[
            ("ip-api", "MaxMind")
        ].country_pct,
        "t3_ipmap_country_agreement_pct": t3[
            ("MaxMind", "RIPE IPmap")
        ].country_pct,
        "f7_ipmap_eu28_pct": ipmap.get(Region.EU28.value, 0.0),
        "f7_ipmap_na_pct": ipmap.get(Region.NORTH_AMERICA.value, 0.0),
        "f7_maxmind_eu28_pct": maxmind.get(Region.EU28.value, 0.0),
        "f7_maxmind_na_pct": maxmind.get(Region.NORTH_AMERICA.value, 0.0),
        "t5_default_country_pct": outcomes[S.DEFAULT].country_pct,
        "t5_default_region_pct": outcomes[S.DEFAULT].region_pct,
        "t5_tld_country_pct": outcomes[S.REDIRECT_TLD].country_pct,
        "t5_tld_region_pct": outcomes[S.REDIRECT_TLD].region_pct,
        "f9_sensitive_share_pct": study.sensitive.sensitive_share_pct(
            study.tracking_requests()
        ),
        "t8_eu28_min_pct": min(eu28_shares) if eu28_shares else 0.0,
        "t8_eu28_max_pct": max(eu28_shares) if eu28_shares else 0.0,
        "f4_single_domain_request_share_pct":
            study.inventory.single_domain_request_share_pct(),
        "pdns_additional_share_pct": study.inventory.additional_share_pct(),
    }


def paper_vs_measured(study: Study) -> str:
    """A rendered paper-vs-measured comparison block."""
    measured = experiment_summary(study)
    lines = ["metric                                      paper    measured"]
    for key in sorted(PAPER_VALUES):
        lines.append(
            f"{key:<42} {PAPER_VALUES[key]:>8.2f} {measured[key]:>10.2f}"
        )
    return "\n".join(lines)


def full_report(study: Study) -> str:
    """Every regenerated table and figure as one text document."""
    blocks: List[str] = []
    for builder in (
        T.table1, T.table2, T.table3, T.table4, T.table5, T.table6,
        T.table7, T.table8, T.table9,
        F.figure2, F.figure3, F.figure4, F.figure5, F.figure6, F.figure7,
        F.figure8, F.figure9, F.figure10, F.figure11, F.figure12,
    ):
        blocks.append(builder(study)["text"])
    blocks.append("Paper vs measured\n" + paper_vs_measured(study))
    return "\n\n".join(blocks)
