"""Regeneration of the paper's tables (1–9) from a :class:`~repro.core.
pipeline.Study`.

Each ``tableN(study)`` returns a dict with structured values plus a
``"text"`` entry containing the rendered table; the benchmark harness
prints that text so the run's output mirrors the paper's rows.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.pipeline import Study
from repro.util.tables import percent, render_table


def table1(study: Study) -> Dict[str, Any]:
    """Table 1 — the real-users dataset statistics."""
    log = study.visit_log
    values = {
        "users": log.n_users(),
        "first_party_domains": log.first_party_domains(),
        "first_party_requests": log.first_party_requests(),
        "third_party_domains": log.third_party_fqdns(),
        "third_party_requests": log.third_party_requests(),
    }
    text = render_table(
        ["# Users", "# 1st party Domains", "# 1st party Requests",
         "# 3rd party Domains", "# 3rd party Requests"],
        [[values["users"], values["first_party_domains"],
          values["first_party_requests"], values["third_party_domains"],
          values["third_party_requests"]]],
        title="Table 1: The real users dataset statistics.",
    )
    return {**values, "text": text}


def table2(study: Study) -> Dict[str, Any]:
    """Table 2 — filter lists vs. semi-automatic classification."""
    classification = study.classification
    abp = classification.list_stats()
    semi = classification.semi_automatic_stats()
    total = classification.total_stats()
    rows = [
        ["AdBlockPlus Lists", len(abp.fqdns), len(abp.tlds),
         len(abp.unique_urls), abp.total_requests],
        ["Semi-automatic", len(semi.fqdns), len(semi.tlds),
         len(semi.unique_urls), semi.total_requests],
        ["Total", len(total.fqdns), len(total.tlds),
         len(total.unique_urls), total.total_requests],
    ]
    text = render_table(
        ["", "# FQDN", "# TLD", "# Unique Requests", "# Total Requests"],
        rows,
        title="Table 2: AdBlockPlus lists vs semi-manual classification.",
    )
    return {
        "abp_requests": abp.total_requests,
        "semi_requests": semi.total_requests,
        "total_requests": total.total_requests,
        "abp_fqdns": len(abp.fqdns),
        "semi_fqdns": len(semi.fqdns),
        "abp_tlds": len(abp.tlds),
        "semi_tlds": len(semi.tlds),
        "semi_over_abp": (
            semi.total_requests / abp.total_requests
            if abp.total_requests
            else 0.0
        ),
        "text": text,
    }


def table3(study: Study, max_ips: Optional[int] = None) -> Dict[str, Any]:
    """Table 3 — pairwise agreement across geolocation tools."""
    addresses = study.inventory.addresses()
    if max_ips is not None:
        addresses = addresses[:max_ips]
    matrix = study.geolocation.pairwise_agreement(addresses)
    tools = ["ip-api", "MaxMind", "RIPE IPmap"]
    rows = []
    for first in tools:
        row: List[Any] = [first]
        for second in tools:
            cell = matrix[(first, second)]
            row.append(f"{cell.country_pct:.2f}% / {cell.region_pct:.2f}%")
        rows.append(row)
    text = render_table(
        ["Service"] + [f"{t} (Country/Cont.)" for t in tools],
        rows,
        title="Table 3: Pair-wise agreement across geolocation tools.",
    )
    return {"matrix": matrix, "n_ips": len(addresses), "text": text}


def table4(study: Study) -> Dict[str, Any]:
    """Table 4 — MaxMind mis-geolocation for the major ad providers.

    The three largest organizations by classified request volume stand
    in for Google / Amazon / Facebook ads+tracking.
    """
    from collections import Counter

    fleet = study.world.fleet
    volume: Counter = Counter()
    for request in study.tracking_requests():
        volume[request.truth_org] += 1
    major = [name for name, _ in volume.most_common(3)]

    oracle = study.world.oracle

    def org_of_ip(address):
        return oracle.owner(address)

    report_rows = study.geolocation.misgeolocation_by_org(
        study.inventory, org_of_ip, major
    )
    rows = []
    for row in report_rows:
        rows.append(
            [
                row.org_label,
                row.n_ips,
                f"{row.wrong_country_ips} ({row.wrong_country_ip_pct:.2f}%)",
                f"{row.wrong_region_ips} ({row.wrong_region_ip_pct:.2f}%)",
                row.n_requests,
                f"{row.wrong_country_requests} "
                f"({row.wrong_country_request_pct:.2f}%)",
                f"{row.wrong_region_requests} "
                f"({row.wrong_region_request_pct:.2f}%)",
            ]
        )
    text = render_table(
        ["Provider", "# IPs", "Wrong Country", "Wrong Cont.",
         "# Requests", "Wrong Country (req)", "Wrong Cont. (req)"],
        rows,
        title="Table 4: Wrong geolocated IPs/requests using the "
        "commercial database for the top ad+tracking providers.",
    )
    return {"rows": report_rows, "providers": major, "text": text}


def table5(study: Study) -> Dict[str, Any]:
    """Table 5 — localization improvements under the what-if scenarios."""
    tracking = study.tracking_requests()
    outcomes = study.localization.scenario_table(tracking)
    baseline = outcomes[0]
    rows = []
    for outcome in outcomes:
        d_country, d_region = outcome.improvement_over(baseline)
        rows.append(
            [
                outcome.scenario.value,
                percent(outcome.country_pct),
                percent(outcome.region_pct),
                "-" if outcome is baseline else percent(d_country),
                "-" if outcome is baseline else percent(d_region),
            ]
        )
    text = render_table(
        ["Scenario", "In Country", "In Cont.", "Impr. Country",
         "Impr. Cont."],
        rows,
        title=(
            f"Table 5: Potential localization improvements "
            f"(EU28 flows: {baseline.n_flows:,})."
        ),
    )
    return {"outcomes": outcomes, "text": text}


def table6(study: Study) -> Dict[str, Any]:
    """Table 6 — per-country improvements from mirroring / migration."""
    tracking = study.tracking_requests()
    rows_data = study.localization.per_country_improvements(tracking)
    display = study.world.registry
    rows = []
    for row in rows_data:
        country = display.find(str(row["country"]))
        rows.append(
            [
                country.name if country else row["country"],
                row["n_requests"],
                percent(float(row["mirroring_improvement_pct"])),
                percent(float(row["migration_improvement_pct"])),
                bool(row["cloud_coverage"]),
            ]
        )
    text = render_table(
        ["Country", "# Requests", "PoP Mirroring impr. (over TLD)",
         "Migration impr. (over TLD)", "Cloud PoP in country"],
        rows,
        title="Table 6: Localization improvement per EU28 country using "
        "public cloud PoPs.",
    )
    return {"rows": rows_data, "text": text}


def table7(study: Study) -> Dict[str, Any]:
    """Table 7 — the four ISP profiles."""
    rows = [
        [isp.name, study.world.registry.get(isp.country).name,
         isp.demographics]
        for isp in study.world.isps
    ]
    text = render_table(
        ["Name", "Country", "Demographics"],
        rows,
        title="Table 7: Profile of the four European ISPs.",
    )
    return {"isps": study.world.isps, "text": text}


def table8(
    study: Study, snapshots: Optional[Sequence[str]] = None
) -> Dict[str, Any]:
    """Table 8 — sampled tracking-flow statistics across ISPs and days."""
    from repro.config import SNAPSHOT_DAYS

    reports = study.isp_study.run_all(snapshots)
    isp_names = sorted({isp for isp, _ in reports})
    # Columns follow the paper's chronological snapshot order.
    snapshot_names = [
        snap for snap in SNAPSHOT_DAYS if (isp_names[0], snap) in reports
    ]
    header = ["Metric"] + [
        f"{isp} {snap}" for isp in isp_names for snap in snapshot_names
    ]
    metric_rows: List[List[Any]] = []
    metric_rows.append(
        ["#Sampled Tracking Flows"]
        + [
            reports[(isp, snap)].sampled_tracking_flows
            for isp in isp_names
            for snap in snapshot_names
        ]
    )
    for region in ("EU 28", "N. America", "Rest of Europe", "Asia",
                   "Rest World"):
        metric_rows.append(
            [region]
            + [
                percent(reports[(isp, snap)].region_shares.get(region, 0.0))
                for isp in isp_names
                for snap in snapshot_names
            ]
        )
    text = render_table(
        header, metric_rows,
        title="Table 8: Sampled tracking flow statistics across EU ISPs "
        "and over time.",
    )
    return {"reports": reports, "text": text}


#: the related-work comparison is a static taxonomy; we reproduce the
#: feature axes and this work's row (the full per-paper grid is in the
#: paper itself and carries no measurement content).
RELATED_WORK_AXES = (
    ("Request classification", "ABP lists + custom corrections"),
    ("Requests type", "Ads + Tracking"),
    ("Measurement type", "Active + Passive"),
    ("Platform type", "Desktop (browser extension) + ISP core"),
    ("Data collection", "Real users + NetFlows"),
    ("Infrastructure geolocation", "Active measurements (RIPE IPmap)"),
    ("Traffic type", "Works on HTTPS"),
)


def table9(study: Study) -> Dict[str, Any]:
    """Table 9 — the feature set of this work among related approaches."""
    rows = [[axis, value] for axis, value in RELATED_WORK_AXES]
    text = render_table(
        ["Feature axis", "This work"],
        rows,
        title="Table 9: Key features of the methodology (related-work "
        "comparison axes).",
    )
    return {"axes": RELATED_WORK_AXES, "text": text}
