"""Paper-artifact regeneration: one function per table and figure,
returning structured data plus a rendered text block the benchmark
harness prints."""

from repro.analysis.tables import (
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)
from repro.analysis.temporal import (
    confinement_trend,
    discovery_curve,
    discovery_saturation_day,
    trend_stability,
)
from repro.analysis.figures import (
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
)

__all__ = [
    "table1", "table2", "table3", "table4", "table5", "table6",
    "table7", "table8", "table9",
    "figure2", "figure3", "figure4", "figure5", "figure6", "figure7",
    "figure8", "figure9", "figure10", "figure11", "figure12",
    "confinement_trend", "trend_stability",
    "discovery_curve", "discovery_saturation_day",
]
