"""Temporal analysis of the panel window (Sect. 1, 3.1, 7.3).

The paper stresses that the methodology "monitor[s] the tracking
ecosystem continuously for a time period of more than four months
capturing any possible temporal variations", and Sect. 7.3 checks that
confinement "has not changed dramatically" across the GDPR
implementation date.  This module provides those time-series views over
the panel log and the tracker-IP inventory:

* per-bucket confinement trends (the panel-side analogue of Table 8's
  four snapshots),
* the tracker-IP discovery curve (how fast the IP list saturates — the
  operational question behind the paper's "continuously monitor"
  proposal).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.confinement import ConfinementAnalyzer, Locator
from repro.core.tracker_ips import TrackerIPInventory
from repro.errors import ValidationError
from repro.geodata.countries import CountryRegistry, default_registry
from repro.geodata.regions import Region, region_of_country
from repro.web.requests import ThirdPartyRequest


@dataclass(frozen=True)
class TrendPoint:
    """One time bucket of the confinement trend."""

    bucket_start_day: float
    bucket_end_day: float
    n_flows: int
    confinement_pct: float

    @property
    def label(self) -> str:
        return f"day {self.bucket_start_day:.0f}-{self.bucket_end_day:.0f}"


def confinement_trend(
    tracking_requests: Sequence[ThirdPartyRequest],
    locate: Locator,
    origin_region: Region = Region.EU28,
    bucket_days: float = 30.0,
    registry: Optional[CountryRegistry] = None,
) -> List[TrendPoint]:
    """Region confinement per time bucket over the panel window.

    Mirrors the paper's finding that EU28 confinement stayed high and
    stable throughout the observation period.
    """
    if bucket_days <= 0:
        raise ValidationError("bucket_days must be positive")
    registry = registry or default_registry()
    analyzer = ConfinementAnalyzer(locate, registry)
    in_region = [
        request
        for request in tracking_requests
        if region_of_country(request.user_country, registry) is origin_region
    ]
    if not in_region:
        return []
    last_day = max(request.day for request in in_region)
    n_buckets = max(1, math.ceil((last_day + 1e-9) / bucket_days))
    confined = [0] * n_buckets
    totals = [0] * n_buckets
    for request in in_region:
        index = min(n_buckets - 1, int(request.day / bucket_days))
        totals[index] += 1
        destination = analyzer.destination_country(request.ip)
        if (
            destination is not None
            and region_of_country(destination, registry) is origin_region
        ):
            confined[index] += 1
    out: List[TrendPoint] = []
    for index in range(n_buckets):
        if totals[index] == 0:
            continue
        out.append(
            TrendPoint(
                bucket_start_day=index * bucket_days,
                bucket_end_day=(index + 1) * bucket_days,
                n_flows=totals[index],
                confinement_pct=100.0 * confined[index] / totals[index],
            )
        )
    return out


def trend_stability(points: Sequence[TrendPoint]) -> float:
    """Max-minus-min confinement across buckets (the paper's "has not
    changed dramatically" check; smaller is more stable)."""
    if not points:
        return 0.0
    values = [point.confinement_pct for point in points]
    return max(values) - min(values)


def discovery_curve(
    inventory: TrackerIPInventory,
    bucket_days: float = 15.0,
) -> List[Tuple[float, int]]:
    """Cumulative tracker IPs known by the end of each time bucket.

    The curve's saturation answers the operational question behind the
    paper's monitoring proposal: how long must a panel run before its
    tracker-IP list stops growing?
    """
    if bucket_days <= 0:
        raise ValidationError("bucket_days must be positive")
    first_seen = sorted(
        record.first_seen
        for record in inventory.records()
        if record.first_seen is not None
    )
    if not first_seen:
        return []
    last = first_seen[-1]
    out: List[Tuple[float, int]] = []
    bucket_end = bucket_days
    cumulative = 0
    cursor = 0
    while bucket_end < last + bucket_days:
        while cursor < len(first_seen) and first_seen[cursor] <= bucket_end:
            cumulative += 1
            cursor += 1
        out.append((bucket_end, cumulative))
        bucket_end += bucket_days
    return out


def discovery_saturation_day(
    inventory: TrackerIPInventory,
    coverage: float = 0.95,
    bucket_days: float = 15.0,
) -> Optional[float]:
    """The first bucket end by which ``coverage`` of all eventually-known
    tracker IPs had already been discovered."""
    if not 0.0 < coverage <= 1.0:
        raise ValidationError("coverage must be in (0, 1]")
    curve = discovery_curve(inventory, bucket_days)
    if not curve:
        return None
    total = curve[-1][1]
    threshold = coverage * total
    for bucket_end, cumulative in curve:
        if cumulative >= threshold:
            return bucket_end
    return None
