"""Optional numpy acceleration behind a feature probe.

Every function here has a pure-Python fallback that produces *bit-
identical* results, so the probe only ever changes speed, never
numbers: a world computed on a numpy-less box diffs to zero against the
same world computed with numpy installed.  That invariant is what lets
the accelerated kernels live on the measurement path at all — the
cold/warm ledger diff would flag any divergence as drift.

The probe runs once at import.  Nothing in this module may read the
environment or otherwise vary per call: availability is a property of
the interpreter, not of the run.

Raises
------
:class:`repro.errors.ColumnarError` on misaligned column inputs; the
probe itself never raises (absence of numpy simply selects the
fallback).
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Sequence, Tuple

from repro.errors import ColumnarError

try:  # feature probe: numpy is optional, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less boxes
    _np = None

#: True when the interpreter has numpy; kernels branch on this once per
#: call, and both branches are locked equal by the accel tests.
HAVE_NUMPY = _np is not None

#: unsigned ``array.array`` typecodes (itemsize is platform-dependent
#: for 'I'/'L', so ndarray views are built from ``itemsize``, not from
#: the typecode)
_UNSIGNED_TYPECODES = frozenset("BHILQ")


def _as_ndarray(values: Sequence[int]) -> "Any":
    """A zero-copy (where possible) integer ndarray over ``values``."""
    if isinstance(values, array) and values.typecode in _UNSIGNED_TYPECODES:
        return _np.frombuffer(values, dtype=_np.dtype(f"u{values.itemsize}"))
    return _np.asarray(values, dtype=_np.int64)


def count_codes(codes: Sequence[int], n_values: int) -> Tuple[int, ...]:
    """Occurrences of each code in ``0..n_values-1``.

    ``codes`` is typically a dictionary-encoded column's code array;
    the result tuple has exactly ``n_values`` entries.
    """
    if HAVE_NUMPY and n_values > 0:
        counts = _np.bincount(_as_ndarray(codes), minlength=n_values)
        return tuple(int(count) for count in counts[:n_values])
    counts = [0] * n_values
    for code in codes:
        counts[code] += 1
    return tuple(counts)


def tally_pairs(
    a_codes: Sequence[int],
    b_codes: Sequence[int],
    n_a: int,
    n_b: int,
) -> Dict[Tuple[int, int], int]:
    """Joint occurrence counts of two aligned code columns.

    The workhorse of the confinement kernels: origin-code × destination-
    code tallies over one chunk, folded into Sankey edges by the caller.
    With numpy the pair is flattened to a single ``a * n_b + b`` code
    and counted with one ``bincount``; the fallback is a dict loop.
    Both produce identical counts.

    Raises :class:`repro.errors.ColumnarError` when the columns have
    different lengths.
    """
    if len(a_codes) != len(b_codes):
        raise ColumnarError(
            f"pair tally over misaligned columns: {len(a_codes)} vs "
            f"{len(b_codes)} rows"
        )
    if HAVE_NUMPY and n_a > 0 and n_b > 0:
        flat = _as_ndarray(a_codes).astype(_np.int64) * n_b + _as_ndarray(
            b_codes
        )
        counts = _np.bincount(flat, minlength=n_a * n_b)
        nonzero = _np.nonzero(counts)[0]
        return {
            (int(code) // n_b, int(code) % n_b): int(counts[code])
            for code in nonzero
        }
    tallies: Dict[Tuple[int, int], int] = {}
    for a, b in zip(a_codes, b_codes):
        key = (a, b)
        tallies[key] = tallies.get(key, 0) + 1
    return tallies


def masked_count(flags: Sequence[int]) -> int:
    """Number of true cells in a BOOL/U8 column (or a slice of one)."""
    if HAVE_NUMPY:
        return int(_as_ndarray(flags).sum())
    return sum(1 for flag in flags if flag)


def nonzero_mask(codes: Sequence[int]) -> Sequence[int]:
    """A 0/1 mask marking the non-zero cells of ``codes``."""
    if HAVE_NUMPY:
        return (_as_ndarray(codes) != 0).astype(_np.uint8)
    return [1 if code else 0 for code in codes]


def and_masks(a: Sequence[int], b: Sequence[int]) -> Sequence[int]:
    """Elementwise conjunction of two aligned 0/1 masks.

    Raises :class:`repro.errors.ColumnarError` when the masks have
    different lengths.
    """
    if len(a) != len(b):
        raise ColumnarError(
            f"conjunction over misaligned masks: {len(a)} vs {len(b)} rows"
        )
    if HAVE_NUMPY:
        return (
            _as_ndarray(a).astype(_np.bool_) & _as_ndarray(b).astype(_np.bool_)
        ).astype(_np.uint8)
    return [1 if (x and y) else 0 for x, y in zip(a, b)]


def select_where(codes: Sequence[int], mask: Sequence[int]) -> Sequence[int]:
    """The cells of ``codes`` whose ``mask`` cell is true.

    Raises :class:`repro.errors.ColumnarError` when the inputs have
    different lengths.
    """
    if len(codes) != len(mask):
        raise ColumnarError(
            f"selection over misaligned columns: {len(codes)} vs "
            f"{len(mask)} rows"
        )
    if HAVE_NUMPY:
        return _as_ndarray(codes)[_as_ndarray(mask).astype(_np.bool_)]
    return [code for code, flag in zip(codes, mask) if flag]


def map_codes(codes: Sequence[int], lookup: Sequence[int]) -> Sequence[int]:
    """Map every cell of ``codes`` through a dense ``lookup`` table.

    The columnar join/confinement trick: per-row work collapses to a
    gather through a table built once per distinct value.
    """
    if HAVE_NUMPY:
        if len(lookup) == 0:
            return _np.zeros(0, dtype=_np.int64)
        table = _np.asarray(lookup, dtype=_np.int64)
        return table[_as_ndarray(codes)]
    return [lookup[code] for code in codes]
