"""Columnar record batches for million-user worlds.

The per-record object path (:class:`~repro.web.requests.
ThirdPartyRequest`, :class:`~repro.netflow.records.FlowRecord`) costs
hundreds of bytes and an attribute lookup per field per record — fine
at the paper's ~350-user panel, fatal at the ROADMAP's millions.  This
package is the substrate of the columnar alternative:

* :class:`~repro.columnar.schema.Schema` /
  :class:`~repro.columnar.schema.ColumnKind` — declarative column
  descriptors mapping to ``array.array`` typecodes or dictionary
  encodings;
* :class:`~repro.columnar.table.ColumnarTable` — a struct-packed
  array-of-columns record batch with chunked iteration;
* :mod:`~repro.columnar.chunks` — cohort/chunk geometry (pure
  functions, reproducible plans);
* :mod:`~repro.columnar.accel` — numpy acceleration behind a feature
  probe, with bit-identical pure-Python fallbacks.

Domain adapters live with their domains (``repro.web.columns``,
``repro.netflow.columns``, ``repro.core.kernels``); this package knows
nothing about flows, requests, or countries.  The object path remains
the reference implementation — ``tests/test_columnar_equivalence.py``
locks both paths to identical headline metrics.

See ``docs/scaling.md`` for the data model and the scaling guide.

Raises
------
Everything here raises :class:`repro.errors.ColumnarError` on misuse.
"""

from repro.columnar.accel import HAVE_NUMPY
from repro.columnar.chunks import chunk_bounds, cohort_bounds
from repro.columnar.schema import ColumnKind, ColumnSpec, Schema
from repro.columnar.table import ColumnarTable, DictColumn

__all__ = [
    "HAVE_NUMPY",
    "ColumnKind",
    "ColumnSpec",
    "ColumnarTable",
    "DictColumn",
    "Schema",
    "chunk_bounds",
    "cohort_bounds",
]
