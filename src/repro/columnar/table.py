"""Struct-packed array-of-columns tables.

A :class:`ColumnarTable` stores a homogeneous record batch as one
storage object per column instead of one Python object per record:

* packed kinds (``U8``..``F64``) live in ``array.array`` buffers —
  one machine word or less per cell, contiguous, and directly viewable
  by the optional numpy kernels (:mod:`repro.columnar.accel`);
* ``STR`` columns are plain lists of strings (URLs are unique per row,
  dictionary-encoding them would only add a code array);
* ``DICT`` columns dictionary-encode arbitrary hashable values
  (countries, FQDNs, :class:`~repro.netbase.addr.IPAddress`) into a
  ``u32`` code array plus a value table — per-row cost collapses to
  four bytes, and kernels can work on the *codes* and touch each
  distinct value once instead of once per row.

At a million users the per-record object path needs hundreds of bytes
per flow; the columnar layout needs tens, and the streaming drivers
(:mod:`repro.core.stream`) keep only one cohort's table alive at a
time, so peak memory is ``O(cohort)`` regardless of world size.

Raises
------
All misuse — ragged rows, unknown columns, out-of-range indices,
incompatible concatenation — raises
:class:`repro.errors.ColumnarError`.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.columnar.chunks import chunk_bounds
from repro.columnar.schema import ColumnKind, Schema
from repro.errors import ColumnarError


class DictColumn:
    """A dictionary-encoded column: ``u32`` codes plus a value table.

    Appending a value interns it: the first occurrence allocates the
    next code, later occurrences reuse it.  Codes are assignment-order
    dense, so ``values[code]`` is O(1) and ``n_values`` bounds every
    code.  Equal columns built from the same value sequence are
    identical regardless of chunking — interning is order-dependent
    only on *first* occurrence, which streaming preserves.
    """

    __slots__ = ("codes", "_values", "_index")

    def __init__(self) -> None:
        self.codes: array = array("I")
        self._values: List[Any] = []
        self._index: Dict[Any, int] = {}

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def n_values(self) -> int:
        """Number of distinct values interned so far."""
        return len(self._values)

    def append(self, value: Any) -> int:
        """Intern ``value`` and append its code; returns the code."""
        code = self._index.get(value)
        if code is None:
            code = len(self._values)
            self._index[value] = code
            self._values.append(value)
        self.codes.append(code)
        return code

    def intern(self, value: Any) -> int:
        """Intern ``value`` without appending a row (for probe lookups)."""
        code = self._index.get(value)
        if code is None:
            code = len(self._values)
            self._index[value] = code
            self._values.append(value)
        return code

    def code_of(self, value: Any) -> Optional[int]:
        """The code of ``value``, or ``None`` when never interned."""
        return self._index.get(value)

    def value_of(self, code: int) -> Any:
        """The value behind ``code``.

        Raises :class:`repro.errors.ColumnarError` on unknown codes.
        """
        if not 0 <= code < len(self._values):
            raise ColumnarError(
                f"dictionary code {code} out of range "
                f"(0..{len(self._values) - 1})"
            )
        return self._values[code]

    def values(self) -> Tuple[Any, ...]:
        """All distinct values, in code order."""
        return tuple(self._values)

    def nbytes(self) -> int:
        return self.codes.itemsize * len(self.codes)


class ColumnarTable:
    """One record batch as struct-packed columns (see module docs).

    Rows are appended as tuples in the schema's canonical column order;
    columns are read back as their raw storage (``array.array``, list,
    or :class:`DictColumn`) for the kernels, or row-wise through
    :meth:`row` / :meth:`iter_rows` for reference-path comparisons.

    Raises :class:`repro.errors.ColumnarError` on ragged appends,
    unknown column names, and value/kind mismatches.
    """

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._columns: Dict[str, Any] = {}
        self._n_rows = 0
        for spec in schema.columns:
            if spec.kind is ColumnKind.DICT:
                self._columns[spec.name] = DictColumn()
            elif spec.kind is ColumnKind.STR:
                self._columns[spec.name] = []
            else:
                self._columns[spec.name] = array(spec.kind.typecode)

    # -- shape -----------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    def __len__(self) -> int:
        return self._n_rows

    def nbytes(self) -> int:
        """Approximate resident bytes of the packed storage.

        ``STR`` columns report per-string sizes; ``DICT`` columns report
        their code arrays (the shared value tables are counted once,
        not per row).
        """
        total = 0
        for spec in self._schema.columns:
            column = self._columns[spec.name]
            if isinstance(column, DictColumn):
                total += column.nbytes()
            elif isinstance(column, array):
                total += column.itemsize * len(column)
            else:
                total += sum(len(value) for value in column)
        return total

    # -- writes ----------------------------------------------------------
    def append(self, row: Sequence[Any]) -> None:
        """Append one row (values in schema column order).

        Raises :class:`repro.errors.ColumnarError` when the row's arity
        does not match the schema.
        """
        if len(row) != len(self._schema):
            raise ColumnarError(
                f"row has {len(row)} values for a "
                f"{len(self._schema)}-column schema"
            )
        for spec, value in zip(self._schema.columns, row):
            column = self._columns[spec.name]
            if isinstance(column, DictColumn):
                column.append(value)
            elif spec.kind is ColumnKind.BOOL:
                column.append(1 if value else 0)
            else:
                column.append(value)
        self._n_rows += 1

    def extend_rows(self, rows: Sequence[Sequence[Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.append(row)

    @classmethod
    def from_rows(
        cls, schema: Schema, rows: Sequence[Sequence[Any]]
    ) -> "ColumnarTable":
        """Build a table from row tuples in schema column order."""
        table = cls(schema)
        table.extend_rows(rows)
        return table

    # -- reads -----------------------------------------------------------
    def column(self, name: str) -> Any:
        """Raw storage of column ``name`` — ``array.array`` for packed
        kinds, ``list`` for STR, :class:`DictColumn` for DICT.

        Raises :class:`repro.errors.ColumnarError` on unknown names.
        """
        if name not in self._columns:
            raise ColumnarError(f"table has no column {name!r}")
        return self._columns[name]

    def cell(self, name: str, index: int) -> Any:
        """The decoded value at ``(column, row)``."""
        column = self.column(name)
        if not 0 <= index < self._n_rows:
            raise ColumnarError(
                f"row index {index} out of range (0..{self._n_rows - 1})"
            )
        if isinstance(column, DictColumn):
            return column.value_of(column.codes[index])
        spec = self._schema.spec(name)
        if spec.kind is ColumnKind.BOOL:
            return bool(column[index])
        return column[index]

    def row(self, index: int) -> Tuple[Any, ...]:
        """One decoded row tuple in schema column order."""
        return tuple(
            self.cell(spec.name, index) for spec in self._schema.columns
        )

    def iter_rows(self) -> Iterator[Tuple[Any, ...]]:
        """Decode the table row-wise (reference/testing path — the
        kernels read columns directly and never pay this cost)."""
        for index in range(self._n_rows):
            yield self.row(index)

    def iter_chunks(
        self, chunk_rows: int
    ) -> Iterator[Tuple[int, int]]:
        """Half-open row windows of at most ``chunk_rows`` rows.

        Raises :class:`repro.errors.ColumnarError` for non-positive
        ``chunk_rows``.
        """
        return chunk_bounds(self._n_rows, chunk_rows)
