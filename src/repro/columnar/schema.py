"""Column and table schema descriptors for the columnar record path.

A :class:`Schema` names the columns of one :class:`~repro.columnar.table.
ColumnarTable` and fixes each column's physical :class:`ColumnKind` —
the ``array.array`` typecode it packs into, or the dictionary / object
storage it uses instead.  Schemas are immutable and hashable, so stage
products can carry them as part of their cache-keyed identity.

Raises
------
Every invalid construction (duplicate column names, empty schemas,
unknown kinds) raises :class:`repro.errors.ColumnarError`; callers
never see a bare ``KeyError``/``ValueError`` from this module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ColumnarError


class ColumnKind(enum.Enum):
    """The physical storage class of one column.

    Numeric kinds map to ``array.array`` typecodes (struct-packed, one
    machine word or less per cell).  ``STR`` stores Python strings in a
    plain list; ``DICT`` dictionary-encodes arbitrary (hashable) values
    into a ``u32`` code array plus a small value table — the right
    encoding for columns with few distinct values (countries, FQDNs,
    IP addresses) where per-row object storage would dominate memory.
    """

    U8 = "u8"
    U16 = "u16"
    U32 = "u32"
    U64 = "u64"
    I64 = "i64"
    F64 = "f64"
    BOOL = "bool"
    STR = "str"
    DICT = "dict"

    @property
    def typecode(self) -> Optional[str]:
        """The ``array.array`` typecode, or ``None`` for object kinds."""
        return _TYPECODES[self]

    @property
    def is_packed(self) -> bool:
        """True for kinds stored in a struct-packed ``array.array``."""
        return _TYPECODES[self] is not None


_TYPECODES: Dict[ColumnKind, Optional[str]] = {
    ColumnKind.U8: "B",
    ColumnKind.U16: "H",
    ColumnKind.U32: "I",
    ColumnKind.U64: "Q",
    ColumnKind.I64: "q",
    ColumnKind.F64: "d",
    ColumnKind.BOOL: "B",
    ColumnKind.STR: None,
    ColumnKind.DICT: None,
}


@dataclass(frozen=True)
class ColumnSpec:
    """One named, typed column of a schema."""

    name: str
    kind: ColumnKind

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise ColumnarError(
                f"column name must be an identifier, got {self.name!r}"
            )
        if not isinstance(self.kind, ColumnKind):
            raise ColumnarError(f"invalid column kind {self.kind!r}")


@dataclass(frozen=True)
class Schema:
    """An ordered, immutable collection of :class:`ColumnSpec` entries.

    Raises :class:`repro.errors.ColumnarError` on duplicate or missing
    column names.  Column order is the canonical row-tuple order used
    by :meth:`repro.columnar.table.ColumnarTable.append` and
    :meth:`~repro.columnar.table.ColumnarTable.row`.
    """

    columns: Tuple[ColumnSpec, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise ColumnarError("schema must declare at least one column")
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            duplicates = [
                name for name in sorted(set(names)) if names.count(name) > 1
            ]
            raise ColumnarError(f"duplicate column name(s): {duplicates}")

    @classmethod
    def of(cls, *pairs: Tuple[str, ColumnKind]) -> "Schema":
        """Build a schema from ``(name, kind)`` pairs in column order."""
        return cls(tuple(ColumnSpec(name, kind) for name, kind in pairs))

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    def spec(self, name: str) -> ColumnSpec:
        """The spec of column ``name``.

        Raises :class:`repro.errors.ColumnarError` when the schema has
        no such column.
        """
        for column in self.columns:
            if column.name == name:
                return column
        raise ColumnarError(f"schema has no column {name!r}")

    def index_of(self, name: str) -> int:
        """Position of column ``name`` in the canonical row order."""
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise ColumnarError(f"schema has no column {name!r}")
