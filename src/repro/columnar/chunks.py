"""Chunk and cohort geometry for the streaming record path.

Two different slicings cooperate to bound memory:

* **cohorts** slice the *world* (users, ISPs) into independent shards
  that are generated, processed, and discarded one at a time — the
  outer streaming loop.  Cohort boundaries must respect semantic units
  (the classifier's referrer closure never crosses users, so a user
  cohort is closure-complete by construction).
* **chunks** slice one cohort's *table* into bounded row windows for
  the inner kernel loops — a pure iteration detail with no semantic
  weight, which is why the equivalence tests sweep chunk sizes.

Both are pure functions of ``(n, size)``: never of worker count, wall
time, or anything else that varies between runs, so a cohort plan is
reproducible and cacheable the same way the runtime's shard plans are.

Raises
------
:class:`repro.errors.ColumnarError` on non-positive sizes.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.errors import ColumnarError

Bounds = Tuple[int, int]


def cohort_bounds(n_items: int, cohort_size: int) -> List[Bounds]:
    """Half-open ``(lo, hi)`` cohort ranges covering ``n_items``.

    The last cohort may be smaller than ``cohort_size``; ``n_items == 0``
    yields no cohorts (an empty world streams as zero work, not as one
    empty cohort).

    Raises :class:`repro.errors.ColumnarError` for non-positive
    ``cohort_size`` or negative ``n_items``.
    """
    if cohort_size < 1:
        raise ColumnarError(
            f"cohort_size must be >= 1, got {cohort_size}"
        )
    if n_items < 0:
        raise ColumnarError(f"n_items must be >= 0, got {n_items}")
    return [
        (lo, min(lo + cohort_size, n_items))
        for lo in range(0, n_items, cohort_size)
    ]


def chunk_bounds(n_rows: int, chunk_rows: int) -> Iterator[Bounds]:
    """Iterate half-open ``(lo, hi)`` row windows over one table.

    Raises :class:`repro.errors.ColumnarError` for non-positive
    ``chunk_rows`` or negative ``n_rows``.
    """
    if chunk_rows < 1:
        raise ColumnarError(
            f"chunk_rows must be >= 1, got {chunk_rows}"
        )
    if n_rows < 0:
        raise ColumnarError(f"n_rows must be >= 0, got {n_rows}")
    for lo in range(0, n_rows, chunk_rows):
        yield (lo, min(lo + chunk_rows, n_rows))
