"""Exception hierarchy for the ``repro`` package.

Every error raised by the package derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subclasses are
organized by subsystem, mirroring the package layout.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """Raised when an experiment configuration is inconsistent or invalid."""


class AddressError(ReproError):
    """Raised for malformed IP addresses or prefixes."""


class AllocationError(AddressError):
    """Raised when an address pool cannot satisfy an allocation request."""


class GeoDataError(ReproError):
    """Raised for unknown countries, regions, or malformed geo queries."""


class DNSError(ReproError):
    """Raised for DNS simulation failures (unknown zone, no answer, ...)."""


class NXDomainError(DNSError):
    """Raised when a queried name does not exist in any authoritative zone."""


class GeolocationError(ReproError):
    """Raised when a geolocation engine cannot produce an estimate."""


class ClassificationError(ReproError):
    """Raised for malformed request records or filter-list rules."""


class NetFlowError(ReproError):
    """Raised for malformed flow records or exporter misconfiguration."""


class PipelineError(ReproError):
    """Raised when a study pipeline stage is run out of order."""


class ValidationError(ReproError, ValueError):
    """Raised when a caller passes an invalid argument.

    Also a :class:`ValueError`, so call sites that predate the taxonomy
    (and external callers following stdlib idiom) keep working.
    """


class StateError(ReproError, RuntimeError):
    """Raised when an operation is invoked in an unusable object state
    (e.g. querying results before the computation ran).

    Also a :class:`RuntimeError` for stdlib-idiom compatibility.
    """


class UnknownKeyError(ReproError, KeyError):
    """Raised when a lookup by name/key has no match.

    Also a :class:`KeyError` for stdlib-idiom compatibility; note the
    usual ``KeyError`` quirk that ``str()`` quotes the message.
    """


class ColumnarError(ReproError):
    """Raised by :mod:`repro.columnar` for schema violations, ragged
    rows, unknown columns, or invalid chunk/cohort geometry."""


class LintError(ReproError):
    """Raised by :mod:`repro.lint` for malformed baselines or rule
    registration conflicts."""


class ExecutionError(ReproError):
    """Raised by :mod:`repro.runtime` when sharded execution produces
    inconsistent results (shard loss, misaligned merges) or the engine
    is misconfigured."""


class ObservabilityError(ReproError):
    """Raised by :mod:`repro.obs` for malformed manifests, mismatched
    span nesting, or metric type conflicts."""


class ServeError(ReproError):
    """Raised by :mod:`repro.serve` for malformed study submissions,
    unroutable requests, a full job queue, or a misconfigured server."""


class HttpError(ServeError):
    """A transport-level failure in the study service, carrying the
    HTTP status code the server sends back."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
