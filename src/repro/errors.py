"""Exception hierarchy for the ``repro`` package.

Every error raised by the package derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subclasses are
organized by subsystem, mirroring the package layout.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """Raised when an experiment configuration is inconsistent or invalid."""


class AddressError(ReproError):
    """Raised for malformed IP addresses or prefixes."""


class AllocationError(AddressError):
    """Raised when an address pool cannot satisfy an allocation request."""


class GeoDataError(ReproError):
    """Raised for unknown countries, regions, or malformed geo queries."""


class DNSError(ReproError):
    """Raised for DNS simulation failures (unknown zone, no answer, ...)."""


class NXDomainError(DNSError):
    """Raised when a queried name does not exist in any authoritative zone."""


class GeolocationError(ReproError):
    """Raised when a geolocation engine cannot produce an estimate."""


class ClassificationError(ReproError):
    """Raised for malformed request records or filter-list rules."""


class NetFlowError(ReproError):
    """Raised for malformed flow records or exporter misconfiguration."""


class PipelineError(ReproError):
    """Raised when a study pipeline stage is run out of order."""
