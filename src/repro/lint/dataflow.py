"""Interprocedural dataflow over the program model.

PR 4's :class:`~repro.lint.program.ProgramModel` answers *who calls
whom*; this module answers three questions that require propagating
facts *along* those edges:

* **seed lineage** — where does every ``random.Random`` on a stage's
  ``run`` path come from?  The S7xx rules demand that each one descends
  from the shard's seeded root (``seeded_rng`` / ``spawn_rng`` /
  ``RngStreams``, src/repro/util/rng.py); a raw ``random.Random(...)``
  three helpers deep would silently break warm-equals-cold replay.
* **exception escape** — which exception types can leave each public
  entrypoint (CLI subcommands, the ``run_study`` facade, stage ``run``
  functions)?  Computed by collecting ``raise`` sites, subtracting the
  enclosing ``try`` handlers, and propagating the remainder along the
  call graph to a fixpoint.  The X8xx rules then hold the ``repro.*``
  boundary to the :class:`~repro.errors.ReproError` taxonomy.
* **resource discipline** — which run-path code performs raw I/O
  (``open``/``socket``/``subprocess``) instead of going through the
  ``repro.io`` / ``obs.persist`` atomic helpers?  (I9xx rules.)

The analysis is *conservative in the non-flagging direction*: dynamic
dispatch, external callees and dynamically-computed exception
expressions are skipped, never guessed, so every reported witness chain
is a real static path.  Only explicit ``raise`` statements are tracked
— implicit exceptions (a ``KeyError`` from a subscript, ``ZeroDivision``
from arithmetic) are out of scope by design.

:func:`DataflowAnalysis.report_json` renders the whole picture as the
``repro.lint/dataflow/v1`` document that ``--dataflow-json`` writes and
CI archives next to the program graph; :meth:`stage_lineage` is reused
by :mod:`repro.runtime.footprint` so the manifest's per-stage lineage
digest is literally the quantity the linter reasons about.
"""

from __future__ import annotations

import ast
import builtins
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.framework import ProjectContext
from repro.lint.program import (
    FunctionInfo,
    FunctionRef,
    ModuleInfo,
    ProgramModel,
    Reachability,
)

DATAFLOW_SCHEMA = "repro.lint/dataflow/v1"

#: process-control exceptions excluded from escape sets — a CLI exiting
#: via SystemExit is sanctioned, not a raw traceback
CONTROL_EXCEPTIONS = frozenset({"SystemExit", "KeyboardInterrupt", "GeneratorExit"})

#: rng-derivation APIs grouped by the child-seed namespace they draw
#: from (``spawn("x")`` and ``seeded_rng(seed, "x")`` do *not* collide:
#: RngStreams.spawn derives under an internal ``spawn:`` prefix)
_DERIVE_FAMILIES = {
    "seeded_rng": "derive",
    "derive_seed": "derive",
    "spawn": "spawn",
    "fork": "fork",
}

#: APIs that *produce* an RNG (or RNG-stream) value
_RNG_PRODUCERS = frozenset({
    "seeded_rng", "spawn_rng", "fixed_rng", "spawn", "fork", "raw",
})

_MAX_WITNESS_HOPS = 12


def _digest(*parts: str) -> str:
    h = hashlib.blake2b(digest_size=20)
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x1f")
    return h.hexdigest()


def is_rng_module(module: str) -> bool:
    """The sanctioned RNG implementation module (``repro.util.rng`` in
    the real tree; any ``*.rng`` module in fixture trees)."""
    return module.split(".")[-1] == "rng"


def is_test_module(rel_path: str, module: str) -> bool:
    """Test code, where ``fixed_rng`` and ad-hoc streams are allowed."""
    parts = rel_path.split("/")
    if any(part in ("tests", "test") for part in parts[:-1]):
        return True
    basename = parts[-1]
    return basename.startswith("test_") or basename == "conftest.py"


def is_io_sanctioned(module: str) -> bool:
    """Modules allowed to touch file handles directly: the ``repro.io``
    package and the obs persistence layer (atomic write helpers)."""
    parts = module.split(".")
    return "io" in parts or parts[-1] == "persist"


def is_serve_module(module: str) -> bool:
    """Modules inside a ``serve`` package: the study service transport.

    This is the **only** carve-out from the I902 no-sockets rule, and it
    is deliberately narrow: the service must listen on a socket to be a
    service, but the exemption covers the ``serve`` layer alone (socket
    calls only — subprocess escapes stay flagged everywhere), so the
    simulation underneath it remains hermetic.
    """
    return "serve" in module.split(".")


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RaiseSite:
    """One explicit ``raise`` of a resolvable exception class."""

    exception: str
    line: int
    snippet: str


@dataclass(frozen=True)
class EscapeOrigin:
    """Why an exception escapes a function: a local raise site, or a
    call to a function it already escapes from."""

    kind: str  # "raise" | "call"
    line: int
    snippet: str = ""
    callee: Optional[FunctionRef] = None


@dataclass(frozen=True)
class RngSite:
    """One RNG-producing or seed-deriving call site."""

    function: FunctionRef
    api: str  # seeded_rng | spawn_rng | fixed_rng | derive_seed | spawn | fork | raw
    #: statically-resolved stream name; ``None`` when the API takes none
    #: (fixed_rng, spawn_rng, raw) or the argument is missing
    name: Optional[str]
    #: True when ``name`` is a full literal (f-strings record only
    #: their static prefix and are never literal)
    literal: bool
    line: int
    col: int
    snippet: str


@dataclass(frozen=True)
class IoSite:
    """One raw I/O call (open/socket/subprocess/os.system...)."""

    function: FunctionRef
    rendered: str
    line: int
    col: int
    snippet: str


# ---------------------------------------------------------------------------
# the analysis
# ---------------------------------------------------------------------------


class DataflowAnalysis:
    """Interprocedural facts over one :class:`ProgramModel`.

    Everything is computed lazily and memoized: the runtime only ever
    needs the RNG-lineage side, the X-rules only the escape side, so
    neither pays for the other.
    """

    def __init__(self, model: ProgramModel) -> None:
        self.model = model
        self._escapes: Optional[Dict[FunctionRef, Dict[str, EscapeOrigin]]] = None
        self._rng_sites: Optional[Dict[FunctionRef, Tuple[RngSite, ...]]] = None
        self._io_sites: Optional[Dict[FunctionRef, Tuple[IoSite, ...]]] = None
        self._ancestors: Optional[Dict[str, Set[str]]] = None
        self._reach_memo: Dict[FunctionRef, Reachability] = {}
        self._stage_reach: Optional[Dict[FunctionRef, List[str]]] = None

    # -- shared plumbing -------------------------------------------------

    def _function_refs(self) -> Iterable[FunctionRef]:
        for module_name in sorted(self.model.modules):
            info = self.model.modules[module_name]
            for qualname in sorted(info.functions):
                yield (module_name, qualname)

    def reachable_from(self, seed: FunctionRef) -> Reachability:
        """Memoized single-seed reachability (per run entrypoint)."""
        cached = self._reach_memo.get(seed)
        if cached is None:
            cached = self.model.reachable([seed])
            self._reach_memo[seed] = cached
        return cached

    def run_reachable(self) -> Dict[FunctionRef, List[str]]:
        """Function → sorted stage names whose ``run`` seed reaches it."""
        if self._stage_reach is None:
            reached: Dict[FunctionRef, Set[str]] = {}
            for decl in self.model.discover_stages():
                run_seed = decl.seeds.get("run")
                if run_seed is None:
                    continue
                for ref in self.reachable_from(run_seed).functions:
                    reached.setdefault(ref, set()).add(decl.name)
            self._stage_reach = {
                ref: sorted(stages) for ref, stages in reached.items()
            }
        return self._stage_reach

    def chain_from(
        self,
        seed: FunctionRef,
        ref: FunctionRef,
        limit: int = _MAX_WITNESS_HOPS,
    ) -> List[str]:
        """The ``seed`` → ``ref`` call chain over the BFS tree, rendered
        as ``module:qualname`` hops (the witness prefix of S/I findings)."""
        reach = self.reachable_from(seed)
        if ref not in reach.parents:
            return [f"{ref[0]}:{ref[1]}"]
        chain: List[str] = []
        cursor: Optional[FunctionRef] = ref
        while cursor is not None and len(chain) < limit:
            chain.append(f"{cursor[0]}:{cursor[1]}")
            cursor = reach.parents.get(cursor)
        return list(reversed(chain))

    def run_path_chain(
        self, stage: str, ref: FunctionRef, limit: int = _MAX_WITNESS_HOPS
    ) -> List[str]:
        """:meth:`chain_from` anchored at one discovered stage's run seed."""
        for decl in self.model.discover_stages():
            if decl.name != stage:
                continue
            run_seed = decl.seeds.get("run")
            if run_seed is not None and ref in (
                self.reachable_from(run_seed).parents
            ):
                return self.chain_from(run_seed, ref, limit)
        return [f"{ref[0]}:{ref[1]}"]

    @staticmethod
    def _snippet(info: ModuleInfo, line: int) -> str:
        lines = info.ctx.lines
        return lines[line - 1].strip() if 0 < line <= len(lines) else ""

    def _callee_at(
        self, fn: FunctionInfo
    ) -> Dict[Tuple[int, int], Any]:
        """(line, col) → resolved Callee for every call in ``fn``."""
        return {(c.line, c.col): c.callee for c in fn.calls}

    def _local_types(
        self,
        info: ModuleInfo,
        fn: FunctionInfo,
        callee_at: Dict[Tuple[int, int], Any],
    ) -> Dict[str, Tuple[str, str]]:
        """Local name → (module, class) from single-assignment
        instantiations (``x = Cls(...)``) and class-typed annotations
        (parameters and ``x: Cls``).  Names bound ambiguously are
        dropped — never guessed."""
        types: Dict[str, Optional[Tuple[str, str]]] = {}

        def bind(name: str, target: Optional[Tuple[str, str]]) -> None:
            if name in types and types[name] != target:
                types[name] = None
            else:
                types[name] = target

        def annotation_class(node: ast.expr) -> Optional[Tuple[str, str]]:
            dotted = info.ctx.dotted_name(node)
            if dotted is None:
                return None
            parts = dotted.split(".")
            symbol = info.symbols.get(parts[0])
            if symbol is None:
                return None
            if symbol.kind == "class" and len(parts) == 1:
                return (symbol.module, symbol.qualname)
            if symbol.kind == "module" and len(parts) == 2:
                origin = self.model.modules.get(symbol.module)
                if origin and parts[1] in origin.classes:
                    return (symbol.module, parts[1])
            return None

        args = getattr(fn.node, "args", None)
        if args is not None:
            params = list(args.args) + list(args.kwonlyargs)
            params += list(getattr(args, "posonlyargs", []))
            for param in params:
                if param.annotation is not None:
                    cls = annotation_class(param.annotation)
                    if cls is not None:
                        bind(param.arg, cls)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                targets = [
                    t for t in node.targets if isinstance(t, ast.Name)
                ]
                if len(targets) != len(node.targets):
                    continue
                value: Optional[Tuple[str, str]] = None
                if isinstance(node.value, ast.Call):
                    callee = callee_at.get(
                        (node.value.lineno, node.value.col_offset)
                    )
                    if callee is not None and callee.kind == "class":
                        value = (callee.module, callee.qualname)
                for target in targets:
                    bind(target.id, value)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                cls = annotation_class(node.annotation)
                bind(node.target.id, cls)
        return {k: v for k, v in types.items() if v is not None}

    def _method_target(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        local_types: Dict[str, Tuple[str, str]],
    ) -> Optional[FunctionRef]:
        """Resolve ``x.method(...)`` through the local-type map, and
        ``self.method(...)`` through the enclosing class."""
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
        ):
            return None
        owner: Optional[Tuple[str, str]] = None
        if func.value.id in ("self", "cls") and "." in fn.qualname:
            owner = (fn.module, fn.qualname.rsplit(".", 1)[0])
        else:
            owner = local_types.get(func.value.id)
        if owner is None:
            return None
        callee = self.model._lookup_method(
            owner[0], owner[1], func.attr, rendered=f"{func.value.id}.{func.attr}"
        )
        if callee.kind != "function":
            return None
        target = (callee.module, callee.qualname)
        return target if self.model.function(target) is not None else None

    # -- exception hierarchy ---------------------------------------------

    def _exception_ancestors(self) -> Dict[str, Set[str]]:
        """Exception class name → every ancestor name (self included).

        Builtins come from live introspection, the ReproError taxonomy
        from :mod:`repro.errors` (so dual-inheritance classes such as
        ``ValidationError(ReproError, ValueError)`` are caught by both
        ``except ReproError`` and ``except ValueError``), and
        fixture-local hierarchies from name-based base chains.
        """
        if self._ancestors is not None:
            return self._ancestors
        ancestors: Dict[str, Set[str]] = {}
        for name in dir(builtins):
            obj = getattr(builtins, name)
            if isinstance(obj, type) and issubclass(obj, BaseException):
                ancestors[name] = {c.__name__ for c in obj.__mro__} - {"object"}
        from repro.errors import ReproError

        stack = [ReproError]
        while stack:
            cls = stack.pop()
            if cls.__name__ not in ancestors:
                ancestors[cls.__name__] = {
                    c.__name__ for c in cls.__mro__
                } - {"object"}
            stack.extend(cls.__subclasses__())
        # Fixture-local classes: resolve base-name chains transitively.
        declared: Dict[str, List[str]] = {}
        for module_name in sorted(self.model.modules):
            info = self.model.modules[module_name]
            for cls_name in sorted(info.classes):
                bases = [
                    base.split(".")[-1] for base in info.classes[cls_name].bases
                ]
                declared.setdefault(cls_name, bases)
        changed = True
        while changed:
            changed = False
            for cls_name, bases in declared.items():
                known = {
                    name
                    for base in bases
                    for name in sorted(ancestors.get(base, set()))
                }
                if not known:
                    continue
                merged = ancestors.get(cls_name, {cls_name}) | known | {cls_name}
                if merged != ancestors.get(cls_name):
                    ancestors[cls_name] = merged
                    changed = True
        self._ancestors = ancestors
        return ancestors

    def exception_category(self, name: str) -> str:
        """``repro`` (in the ReproError taxonomy), ``builtin``, or
        ``unknown`` (an exception class the analysis cannot place)."""
        ancestors = self._exception_ancestors()
        lineage = ancestors.get(name)
        if lineage is not None and "ReproError" in lineage:
            return "repro"
        if hasattr(builtins, name):
            return "builtin"
        return "unknown"

    def _handles(self, handler: str, raised: str) -> bool:
        ancestors = self._exception_ancestors()
        lineage = ancestors.get(raised)
        if lineage is None:
            # Unknown class: assume a plain Exception subclass.
            lineage = {raised, "Exception", "BaseException"}
        return handler in lineage

    def _guarded(self, guards: Tuple[Tuple[str, ...], ...], raised: str) -> bool:
        return any(
            self._handles(handler, raised)
            for frame in guards
            for handler in frame
        )

    # -- escape analysis -------------------------------------------------

    def escapes(self) -> Dict[FunctionRef, Dict[str, EscapeOrigin]]:
        """Escaping exception set per function, with one origin each."""
        if self._escapes is not None:
            return self._escapes
        local: Dict[FunctionRef, List[Tuple[Tuple[Tuple[str, ...], ...], RaiseSite]]] = {}
        calls: Dict[
            FunctionRef,
            List[Tuple[Tuple[Tuple[str, ...], ...], FunctionRef, int, str]],
        ] = {}
        for ref in self._function_refs():
            info = self.model.modules[ref[0]]
            fn = info.functions[ref[1]]
            raises, call_edges = self._scan_escape_sites(info, fn)
            local[ref] = raises
            calls[ref] = call_edges
        escapes: Dict[FunctionRef, Dict[str, EscapeOrigin]] = {}
        for ref, raise_list in local.items():
            out: Dict[str, EscapeOrigin] = {}
            for guards, site in raise_list:
                if site.exception in CONTROL_EXCEPTIONS:
                    continue
                if site.exception in out or self._guarded(guards, site.exception):
                    continue
                out[site.exception] = EscapeOrigin(
                    kind="raise", line=site.line, snippet=site.snippet
                )
            escapes[ref] = out
        # Monotone fixpoint over the call graph: escape sets only grow,
        # so iteration terminates even through recursion cycles.
        changed = True
        while changed:
            changed = False
            for ref in sorted(calls):
                out = escapes[ref]
                for guards, callee, line, snippet in calls[ref]:
                    for name in sorted(escapes.get(callee, {})):
                        if name in out or self._guarded(guards, name):
                            continue
                        out[name] = EscapeOrigin(
                            kind="call", line=line, snippet=snippet,
                            callee=callee,
                        )
                        changed = True
        self._escapes = escapes
        return escapes

    def _scan_escape_sites(
        self, info: ModuleInfo, fn: FunctionInfo
    ) -> Tuple[
        List[Tuple[Tuple[Tuple[str, ...], ...], RaiseSite]],
        List[Tuple[Tuple[Tuple[str, ...], ...], FunctionRef, int, str]],
    ]:
        """(raise sites, analyzed-call edges), each with its enclosing
        ``try``-handler guard stack."""
        callee_at = self._callee_at(fn)
        local_types = self._local_types(info, fn, callee_at)
        raises: List[Tuple[Tuple[Tuple[str, ...], ...], RaiseSite]] = []
        edges: List[
            Tuple[Tuple[Tuple[str, ...], ...], FunctionRef, int, str]
        ] = []

        def scan_expr(
            node: ast.AST, guards: Tuple[Tuple[str, ...], ...]
        ) -> None:
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                callee = callee_at.get((sub.lineno, sub.col_offset))
                target: Optional[FunctionRef] = None
                if callee is not None and callee.kind == "function":
                    target = (callee.module, callee.qualname)
                elif callee is not None and callee.kind == "class":
                    # Instantiation runs __init__ when the class defines
                    # one — or __post_init__ for dataclasses, whose
                    # generated __init__ calls it.
                    origin = self.model.modules.get(callee.module)
                    cls = origin.classes.get(callee.qualname) if origin else None
                    init = None
                    if cls is not None:
                        init = cls.methods.get("__init__") or (
                            cls.methods.get("__post_init__")
                        )
                    if init is not None:
                        target = (callee.module, init)
                if target is None:
                    target = self._method_target(fn, sub, local_types)
                if target is not None and self.model.function(target) is not None:
                    edges.append((
                        guards, target, sub.lineno,
                        self._snippet(info, sub.lineno),
                    ))

        def scan_block(
            stmts: Sequence[ast.stmt],
            guards: Tuple[Tuple[str, ...], ...],
            caught: Optional[Tuple[Tuple[str, ...], Optional[str]]],
        ) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.Try) or (
                    hasattr(ast, "TryStar") and isinstance(
                        stmt, getattr(ast, "TryStar")
                    )
                ):
                    frame = tuple(
                        name
                        for handler in stmt.handlers
                        for name in self._handler_names(handler)
                    )
                    scan_block(stmt.body, guards + (frame,), caught)
                    for handler in stmt.handlers:
                        names = self._handler_names(handler)
                        scan_block(
                            handler.body, guards, (names, handler.name)
                        )
                    # ``else`` and ``finally`` are *not* protected by
                    # this try's handlers.
                    scan_block(stmt.orelse, guards, caught)
                    scan_block(stmt.finalbody, guards, caught)
                    continue
                if isinstance(stmt, ast.Raise):
                    for name in self._raised_names(stmt, caught):
                        raises.append((
                            guards,
                            RaiseSite(
                                exception=name,
                                line=stmt.lineno,
                                snippet=self._snippet(info, stmt.lineno),
                            ),
                        ))
                    if stmt.exc is not None:
                        scan_expr(stmt.exc, guards)
                    continue
                # Header expressions of this statement (test, iter,
                # withitems, call values...) evaluate under the current
                # guards; nested statement blocks recurse.
                for field_name, value in ast.iter_fields(stmt):
                    if isinstance(value, ast.expr):
                        scan_expr(value, guards)
                    elif isinstance(value, list):
                        exprs = [v for v in value if isinstance(v, ast.expr)]
                        for expr in exprs:
                            scan_expr(expr, guards)
                        items = [
                            v for v in value if isinstance(v, ast.withitem)
                        ]
                        for item in items:
                            scan_expr(item.context_expr, guards)
                        blocks = [v for v in value if isinstance(v, ast.stmt)]
                        if blocks:
                            scan_block(blocks, guards, caught)

        body = getattr(fn.node, "body", [])
        scan_block(body, (), None)
        return raises, edges

    @staticmethod
    def _handler_names(handler: ast.ExceptHandler) -> Tuple[str, ...]:
        if handler.type is None:
            return ("BaseException",)
        nodes = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        names: List[str] = []
        for node in nodes:
            if isinstance(node, ast.Name):
                names.append(node.id)
            elif isinstance(node, ast.Attribute):
                names.append(node.attr)
        return tuple(names) or ("BaseException",)

    def _raised_names(
        self,
        stmt: ast.Raise,
        caught: Optional[Tuple[Tuple[str, ...], Optional[str]]],
    ) -> List[str]:
        exc = stmt.exc
        if exc is None:
            # Bare re-raise: escapes the handler's caught types.
            return list(caught[0]) if caught else []
        target = exc.func if isinstance(exc, ast.Call) else exc
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        else:
            return []
        if not isinstance(exc, ast.Call):
            if caught and name == caught[1]:
                # ``raise exc`` of the handler variable: a re-raise.
                return list(caught[0])
            if name[:1].islower():
                return []  # re-raising some other caught variable
        return [name]

    # -- RNG derivation scan ---------------------------------------------

    def rng_sites(self) -> Dict[FunctionRef, Tuple[RngSite, ...]]:
        """Every RNG-producing / seed-deriving call site per function."""
        if self._rng_sites is not None:
            return self._rng_sites
        sites: Dict[FunctionRef, Tuple[RngSite, ...]] = {}
        for ref in self._function_refs():
            info = self.model.modules[ref[0]]
            fn = info.functions[ref[1]]
            sites[ref] = tuple(self._scan_rng_sites(info, fn, ref))
        self._rng_sites = sites
        return sites

    def _scan_rng_sites(
        self, info: ModuleInfo, fn: FunctionInfo, ref: FunctionRef
    ) -> List[RngSite]:
        callee_at = self._callee_at(fn)
        out: List[RngSite] = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            api = self._rng_api(info, node, callee_at)
            if api is None:
                continue
            name, literal = self._stream_name(info, node, api)
            out.append(RngSite(
                function=ref,
                api=api,
                name=name,
                literal=literal,
                line=node.lineno,
                col=node.col_offset,
                snippet=self._snippet(info, node.lineno),
            ))
        return out

    def _rng_api(
        self,
        info: ModuleInfo,
        node: ast.Call,
        callee_at: Dict[Tuple[int, int], Any],
    ) -> Optional[str]:
        dotted = info.ctx.dotted_name(node.func)
        if dotted is not None:
            if dotted == "random.Random" or dotted.endswith(".random.Random"):
                return "raw"
            last = dotted.split(".")[-1]
            if last in ("seeded_rng", "spawn_rng", "fixed_rng", "derive_seed"):
                return last
        callee = callee_at.get((node.lineno, node.col_offset))
        if callee is not None and callee.kind == "function":
            if is_rng_module(callee.module) and callee.qualname in (
                "seeded_rng", "spawn_rng", "fixed_rng", "derive_seed",
            ):
                return callee.qualname
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "spawn", "fork",
        ):
            return node.func.attr
        return None

    def _stream_name(
        self, info: ModuleInfo, node: ast.Call, api: str
    ) -> Tuple[Optional[str], bool]:
        """The statically-resolved stream-name argument of a derivation
        call: (name, is-full-literal).  F-strings resolve to their
        static prefix and count as non-literal."""
        family = _DERIVE_FAMILIES.get(api)
        if family is None:
            return None, False
        index = 1 if api in ("seeded_rng", "derive_seed") else 0
        args = list(node.args)
        expr: Optional[ast.expr] = None
        if len(args) > index:
            expr = args[index]
        else:
            for kw in node.keywords:
                if kw.arg == "name":
                    expr = kw.value
        if expr is None:
            return None, False
        resolved = self.model.resolve_string(info, expr)
        if resolved is not None:
            return resolved, True
        prefix = self.model.static_prefix(expr)
        if prefix:
            return prefix + "…", False
        return "<dynamic>", False

    # -- raw I/O scan ----------------------------------------------------

    def io_sites(self) -> Dict[FunctionRef, Tuple[IoSite, ...]]:
        """Raw I/O call sites per function (open/socket/subprocess...)."""
        if self._io_sites is not None:
            return self._io_sites
        sites: Dict[FunctionRef, Tuple[IoSite, ...]] = {}
        for ref in self._function_refs():
            info = self.model.modules[ref[0]]
            fn = info.functions[ref[1]]
            out: List[IoSite] = []
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                rendered = self._raw_io_name(info, node)
                if rendered is None:
                    continue
                out.append(IoSite(
                    function=ref,
                    rendered=rendered,
                    line=node.lineno,
                    col=node.col_offset,
                    snippet=self._snippet(info, node.lineno),
                ))
            sites[ref] = tuple(out)
        self._io_sites = sites
        return sites

    @staticmethod
    def _raw_io_name(info: ModuleInfo, node: ast.Call) -> Optional[str]:
        dotted = info.ctx.dotted_name(node.func)
        if dotted is None:
            return None
        if dotted == "open":
            return "open"
        if dotted.startswith("socket.") or dotted == "socket":
            return dotted
        if dotted.startswith("subprocess."):
            return dotted
        if dotted in ("os.popen", "os.system"):
            return dotted
        return None

    # -- lineage trees ---------------------------------------------------

    def stage_lineage(
        self, stage: str, run_ref: FunctionRef
    ) -> Dict[str, Any]:
        """The RNG-derivation tree reachable from one stage's ``run``.

        The digest folds the *structure* — which function derives which
        stream through which API — and deliberately excludes line
        numbers, so pure line drift (an edit above a derivation site)
        does not masquerade as a lineage change; any such edit already
        shows up in the stage's footprint salt.
        """
        sites = self.rng_sites()
        reach = self.reachable_from(run_ref)
        streams: List[Dict[str, Any]] = []
        keys: List[str] = []
        for ref in sorted(set(reach.functions)):
            for site in sites.get(ref, ()):
                entry = {
                    "function": f"{ref[0]}:{ref[1]}",
                    "api": site.api,
                    "name": site.name,
                    "literal": site.literal,
                    "line": site.line,
                    "chain": self.chain_from(run_ref, ref),
                }
                streams.append(entry)
                keys.append(
                    f"{ref[0]}:{ref[1]}:{site.api}:"
                    f"{site.name or ''}:{int(site.literal)}"
                )
        streams.sort(key=lambda e: (e["function"], e["api"], e["name"] or "", e["line"]))
        digest = _digest(
            f"stage:{stage}", f"run:{run_ref[0]}:{run_ref[1]}", *sorted(keys)
        )
        return {
            "digest": digest,
            "root": f"{run_ref[0]}:{run_ref[1]}",
            "streams": streams,
        }

    def stage_lineages(self) -> Dict[str, Dict[str, Any]]:
        """Lineage trees for every statically-discovered stage."""
        lineages: Dict[str, Dict[str, Any]] = {}
        for decl in self.model.discover_stages():
            run_seed = decl.seeds.get("run")
            if run_seed is None or self.model.function(run_seed) is None:
                continue
            lineages[decl.name] = self.stage_lineage(decl.name, run_seed)
        return lineages

    # -- entrypoints -----------------------------------------------------

    def entrypoints(self) -> Dict[str, Dict[str, Any]]:
        """Public boundary functions, each with its escape set.

        * ``cli:<module>`` — ``main`` of every ``*.cli`` / ``*.__main__``
          module, plus ``cli:<module>:<subcommand>`` for each statically
          discovered ``add_parser("<name>")`` (subcommands dispatch
          through ``main``, so they share its escape set);
        * ``facade:<module>:run_study`` — the study facade;
        * ``stage:<name>:run`` — every discovered stage ``run``.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for module_name in sorted(self.model.modules):
            info = self.model.modules[module_name]
            last = module_name.split(".")[-1]
            if last in ("cli", "__main__") and "main" in info.functions:
                ref = (module_name, "main")
                record = self._entrypoint_record("cli", ref)
                out[f"cli:{module_name}"] = record
                for sub in self._subcommands(info):
                    entry = dict(record)
                    entry["subcommand"] = sub
                    out[f"cli:{module_name}:{sub}"] = entry
            if "run_study" in info.functions:
                out[f"facade:{module_name}:run_study"] = (
                    self._entrypoint_record("facade", (module_name, "run_study"))
                )
        for decl in self.model.discover_stages():
            run_seed = decl.seeds.get("run")
            if run_seed is None or self.model.function(run_seed) is None:
                continue
            out[f"stage:{decl.name}:run"] = self._entrypoint_record(
                "stage", run_seed
            )
        return out

    @staticmethod
    def _subcommands(info: ModuleInfo) -> List[str]:
        """Every ``*.add_parser("<literal>")`` name in one module."""
        assert info.ctx.tree is not None
        names: List[str] = []
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr == "add_parser"
            ):
                continue
            if node.args and isinstance(node.args[0], ast.Constant) and (
                isinstance(node.args[0].value, str)
            ):
                names.append(node.args[0].value)
        return sorted(set(names))

    def _entrypoint_record(
        self, kind: str, ref: FunctionRef
    ) -> Dict[str, Any]:
        escapes = self.escapes().get(ref, {})
        return {
            "kind": kind,
            "module": ref[0],
            "function": ref[1],
            "escapes": {
                name: {
                    "category": self.exception_category(name),
                    "witness": self.witness_chain(ref, name),
                }
                for name in sorted(escapes)
            },
        }

    def witness_chain(self, ref: FunctionRef, exception: str) -> List[str]:
        """``file:line`` hops from ``ref`` down to the raise site."""
        chain: List[str] = []
        seen: Set[FunctionRef] = set()
        cursor: Optional[FunctionRef] = ref
        while cursor is not None and cursor not in seen and (
            len(chain) < _MAX_WITNESS_HOPS
        ):
            seen.add(cursor)
            origin = self.escapes().get(cursor, {}).get(exception)
            if origin is None:
                break
            info = self.model.modules.get(cursor[0])
            rel = info.ctx.rel_path if info else cursor[0]
            chain.append(f"{rel}:{origin.line} {origin.snippet}")
            cursor = origin.callee if origin.kind == "call" else None
        return chain

    # -- the report ------------------------------------------------------

    def report_json(self) -> Dict[str, Any]:
        """The full ``repro.lint/dataflow/v1`` document."""
        stages: Dict[str, Any] = {}
        taints: List[Dict[str, Any]] = []
        run_reach = self.run_reachable()
        sites = self.rng_sites()
        for decl in self.model.discover_stages():
            run_seed = decl.seeds.get("run")
            if run_seed is None or self.model.function(run_seed) is None:
                continue
            stages[decl.name] = {
                "module": decl.module,
                "run": f"{run_seed[0]}:{run_seed[1]}",
                "lineage": self.stage_lineage(decl.name, run_seed),
            }
        for ref in sorted(run_reach):
            for site in sites.get(ref, ()):
                if site.api != "raw" or is_rng_module(ref[0]):
                    continue
                info = self.model.modules[ref[0]]
                for stage in run_reach[ref]:
                    taints.append({
                        "rule": "S701",
                        "stage": stage,
                        "site": f"{info.ctx.rel_path}:{site.line}",
                        "snippet": site.snippet,
                        "chain": self.run_path_chain(stage, ref),
                    })
        n_functions = sum(
            len(info.functions) for info in self.model.modules.values()
        )
        entrypoints = self.entrypoints()
        return {
            "schema": DATAFLOW_SCHEMA,
            "entrypoints": entrypoints,
            "stages": stages,
            "taints": taints,
            "summary": {
                "modules": len(self.model.modules),
                "functions": n_functions,
                "entrypoints": len(entrypoints),
                "stages": len(stages),
                "taints": len(taints),
            },
        }


# ---------------------------------------------------------------------------
# memoization
# ---------------------------------------------------------------------------


def dataflow_for_model(model: ProgramModel) -> DataflowAnalysis:
    """The (memoized) analysis of one program model — the runtime's
    entry, mirroring how footprints hang off the memoized model."""
    cached = getattr(model, "_dataflow_analysis", None)
    if cached is None:
        cached = DataflowAnalysis(model)
        setattr(model, "_dataflow_analysis", cached)
    return cached


def dataflow_for(project: ProjectContext) -> DataflowAnalysis:
    """The (memoized) analysis of a lint run's project: all S/X/I rules
    and ``--dataflow-json`` share one instance."""
    return dataflow_for_model(project.program_model())
