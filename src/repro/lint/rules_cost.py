"""Hot-path cost rules (Q1101–Q1105).

Built on :mod:`repro.lint.cost`: every function reachable from a
stage's ``run`` seed is scanned for the accidental-cost patterns that
turn a linear pipeline quadratic at million-user scale:

* **Q1101** — ``x in <list>`` membership inside a loop (O(n) per probe;
  use a set or dict).
* **Q1102** — ``s += ...`` string accumulation inside a loop (O(n²)
  total; collect parts and ``"".join``).
* **Q1103** — two nested loops ranging over the *same* record axis
  (the accidental all-pairs loop).
* **Q1104** — per-row dict / object allocation inside an
  ``iter_chunks`` consumer (the columnar path exists to avoid exactly
  this).
* **Q1105** — ``x = x + ...`` sequence rebinds inside a loop
  (quadratic list/tuple/str building).

Findings attach to the hazard site and name the stages whose run path
reaches it, mirroring the P-family message shape.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.cost import cost_for
from repro.lint.framework import Finding, ProjectContext, Rule, register
from repro.lint.rules_purity import _run_reachable


class _CostRule(Rule):
    """Shared driver: report one hazard kind over run-path functions."""

    hazard_kind = ""

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        model = project.program_model()
        analysis = cost_for(project)
        for ref, stages in sorted(_run_reachable(model).items()):
            if model.function(ref) is None:
                continue
            ctx = project.context_for_module(ref[0])
            if ctx is None:
                continue
            via = ", ".join(stages)
            for hazard in analysis.function_cost(ref).hazards:
                if hazard.kind != self.hazard_kind:
                    continue
                yield ctx.finding(
                    self,
                    hazard.node,
                    f"{hazard.detail} [in {ref[1]}, on the run path "
                    f"of: {via}]",
                )


@register
class ListMembershipRule(_CostRule):
    """Q1101 — list membership probe inside a loop."""

    code = "Q1101"
    name = "quadratic-membership"
    description = (
        "'in' membership against a list inside a loop on a stage run "
        "path: O(n) per probe; use a set or dict"
    )
    hazard_kind = "list-membership"


@register
class StrAccumulationRule(_CostRule):
    """Q1102 — string accumulation inside a loop."""

    code = "Q1102"
    name = "str-accumulation"
    description = (
        "'s += ...' string accumulation inside a loop on a stage run "
        "path: quadratic total copy; collect parts and ''.join"
    )
    hazard_kind = "str-accum"


@register
class SameAxisNestingRule(_CostRule):
    """Q1103 — nested loops over the same record axis."""

    code = "Q1103"
    name = "all-pairs-loop"
    description = (
        "two nested loops range over the same record axis on a stage "
        "run path: the accidental all-pairs O(n^2) loop"
    )
    hazard_kind = "same-axis-nesting"


@register
class PerRowAllocationRule(_CostRule):
    """Q1104 — per-row allocation inside an iter_chunks consumer."""

    code = "Q1104"
    name = "per-row-allocation"
    description = (
        "dict or object allocated per row inside an iter_chunks "
        "consumer: the columnar path exists to avoid per-row objects"
    )
    hazard_kind = "per-row-alloc"


@register
class SequenceRebindRule(_CostRule):
    """Q1105 — sequence rebind concatenation inside a loop."""

    code = "Q1105"
    name = "seq-rebind-in-loop"
    description = (
        "'x = x + ...' rebind inside a loop on a stage run path: "
        "copies the whole sequence every iteration"
    )
    hazard_kind = "seq-rebind"
