"""reprolint — AST-based invariant checks for the reproduction.

Eleven rule families guard the properties the paper's tables depend on:

* **D-rules** (determinism): no shared/ad-hoc RNG state, no wall-clock
  or environment reads in simulation layers, no ``hash()`` seeding, no
  unsorted set iteration;
* **E-rules** (error discipline): every raise inside the ReproError
  taxonomy, no bare excepts, no assert-based input validation;
* **A-rules** (layering): the package import DAG points strictly down,
  with no cycles;
* **C-rules** (cache integrity): every stage's footprint salt covers
  the code its callables can execute;
* **P-rules** (shard purity): no globals, module mutation or ambient
  reads on a stage's run path;
* **O-rules** (observability): metric and span names/labels match the
  declared catalog;
* **S-rules** (seed lineage): every RNG on a run path descends from
  the shard's seeded root, no double-spent stream names;
* **X-rules** (exception escape): no builtin exception leaves a public
  entrypoint un-wrapped, CLIs never exit with raw tracebacks;
* **I-rules** (resource discipline): file I/O through the atomic
  helpers only, no sockets or subprocesses;
* **T-rules** (concurrency context): no blocking calls reachable from
  the event loop, no cross-context shared-state writes without a lock
  witness, no loop-only APIs from threads, no raw concurrent file
  writes bypassing the atomic helpers;
* **Q-rules** (hot-path cost): no accidental quadratic patterns on a
  stage's run path — list-membership probes, string accumulation,
  same-axis loop nesting, per-row allocation in columnar consumers.

The C/P/O families read the whole-program import/call graph
(:mod:`repro.lint.program`); the S/X/I families ride the
interprocedural dataflow engine on top of it
(:mod:`repro.lint.dataflow`); the T family classifies every function by
its reachable execution contexts (:mod:`repro.lint.concurrency`) and
the Q family scans run-path loop structure (:mod:`repro.lint.cost`).
Run ``python -m repro.lint src/repro`` (or ``make lint``); see
``docs/linting.md`` for pragmas, the baseline workflow, and how to add
a rule.
"""

from repro.lint.baseline import load_baseline, partition, write_baseline
from repro.lint.findings import Finding
from repro.lint.framework import (
    FileContext,
    LintResult,
    ProjectContext,
    Rule,
    all_rules,
    register,
    run_lint,
    select_rules,
)

#: the registered rule families: code prefix -> short name.  The
#: tripwire test locks this roster against the family table in
#: ``docs/linting.md`` and against the codes actually registered, so a
#: new family cannot ship undocumented (or documented but unregistered).
RULE_FAMILIES = {
    "D": "determinism",
    "E": "error discipline",
    "A": "layering",
    "C": "cache integrity",
    "P": "shard purity",
    "O": "observability",
    "S": "seed lineage",
    "X": "exception escape",
    "I": "resource discipline",
    "T": "concurrency context",
    "Q": "hot-path cost",
}

__all__ = [
    "Finding",
    "FileContext",
    "LintResult",
    "ProjectContext",
    "Rule",
    "RULE_FAMILIES",
    "all_rules",
    "register",
    "run_lint",
    "select_rules",
    "load_baseline",
    "partition",
    "write_baseline",
]
