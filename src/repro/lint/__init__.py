"""reprolint — AST-based invariant checks for the reproduction.

Three rule families guard the properties the paper's tables depend on:

* **D-rules** (determinism): no shared/ad-hoc RNG state, no wall-clock
  or environment reads in simulation layers, no ``hash()`` seeding, no
  unsorted set iteration;
* **E-rules** (error discipline): every raise inside the ReproError
  taxonomy, no bare excepts, no assert-based input validation;
* **A-rules** (layering): the package import DAG points strictly down,
  with no cycles.

Run ``python -m repro.lint src/repro`` (or ``make lint``); see
``docs/linting.md`` for pragmas, the baseline workflow, and how to add
a rule.
"""

from repro.lint.baseline import load_baseline, partition, write_baseline
from repro.lint.findings import Finding
from repro.lint.framework import (
    FileContext,
    LintResult,
    ProjectContext,
    Rule,
    all_rules,
    register,
    run_lint,
    select_rules,
)

__all__ = [
    "Finding",
    "FileContext",
    "LintResult",
    "ProjectContext",
    "Rule",
    "all_rules",
    "register",
    "run_lint",
    "select_rules",
    "load_baseline",
    "partition",
    "write_baseline",
]
