"""reprolint — AST-based invariant checks for the reproduction.

Nine rule families guard the properties the paper's tables depend on:

* **D-rules** (determinism): no shared/ad-hoc RNG state, no wall-clock
  or environment reads in simulation layers, no ``hash()`` seeding, no
  unsorted set iteration;
* **E-rules** (error discipline): every raise inside the ReproError
  taxonomy, no bare excepts, no assert-based input validation;
* **A-rules** (layering): the package import DAG points strictly down,
  with no cycles;
* **C-rules** (cache integrity): every stage's footprint salt covers
  the code its callables can execute;
* **P-rules** (shard purity): no globals, module mutation or ambient
  reads on a stage's run path;
* **O-rules** (observability): metric and span names/labels match the
  declared catalog;
* **S-rules** (seed lineage): every RNG on a run path descends from
  the shard's seeded root, no double-spent stream names;
* **X-rules** (exception escape): no builtin exception leaves a public
  entrypoint un-wrapped, CLIs never exit with raw tracebacks;
* **I-rules** (resource discipline): file I/O through the atomic
  helpers only, no sockets or subprocesses.

The C/P/O families read the whole-program import/call graph
(:mod:`repro.lint.program`); the S/X/I families ride the
interprocedural dataflow engine on top of it
(:mod:`repro.lint.dataflow`). Run ``python -m repro.lint src/repro``
(or ``make lint``); see ``docs/linting.md`` for pragmas, the baseline
workflow, and how to add a rule.
"""

from repro.lint.baseline import load_baseline, partition, write_baseline
from repro.lint.findings import Finding
from repro.lint.framework import (
    FileContext,
    LintResult,
    ProjectContext,
    Rule,
    all_rules,
    register,
    run_lint,
    select_rules,
)

__all__ = [
    "Finding",
    "FileContext",
    "LintResult",
    "ProjectContext",
    "Rule",
    "all_rules",
    "register",
    "run_lint",
    "select_rules",
    "load_baseline",
    "partition",
    "write_baseline",
]
