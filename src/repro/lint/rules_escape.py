"""X-rules: exception escape.

The CLI contract (docs/errors.md) is that user-facing failures surface
as one-line ``ReproError`` messages, never raw tracebacks, and that
library code wraps environmental failures (``OSError``, ``KeyError``
from malformed inputs, ...) into the taxonomy with ``raise ... from``.
The dataflow engine computes the *escaping exception set* of every
public entrypoint — CLI ``main`` functions and their subcommands, the
``run_study`` facade, and stage ``run`` functions — by propagating
``raise`` sites minus enclosing handlers along the call graph; these
rules judge the result:

* **X801** — a builtin exception can escape a public entrypoint
  un-wrapped in the ``ReproError`` hierarchy;
* **X802** — a CLI ``main`` can exit with a raw traceback (its escape
  set is non-empty — every CLI must catch ``ReproError`` at top level
  and translate it to an exit code);
* **X803** — a wrapping ``raise`` inside an ``except`` handler without
  ``from`` (breaks the causal chain the first two rules rely on to
  keep context attached).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.lint.dataflow import dataflow_for
from repro.lint.findings import Finding
from repro.lint.framework import FileContext, ProjectContext, Rule, register


def _witness(chain: List[str], limit: int = 3) -> str:
    hops = chain[:limit]
    if len(chain) > limit:
        hops.append("...")
    return " -> ".join(hops) if hops else "<no static witness>"


class _EscapeRule(Rule):
    """Shared driver over the engine's entrypoint escape sets."""

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        if not project.files:
            return
        df = dataflow_for(project)
        model = df.model
        for key in sorted(df.entrypoints()):
            record = df.entrypoints()[key]
            if "subcommand" in record:
                # Subcommands share their dispatcher's escape set; one
                # finding on ``main`` covers them all.
                continue
            ref = (record["module"], record["function"])
            fn = model.function(ref)
            ctx = project.context_for_module(ref[0])
            if fn is None or ctx is None:
                continue
            line = getattr(fn.node, "lineno", 1)
            col = getattr(fn.node, "col_offset", 0)
            for message in self._judge(key, record):
                snippet = (
                    ctx.lines[line - 1].strip()
                    if 0 < line <= len(ctx.lines)
                    else ""
                )
                yield Finding(
                    path=ctx.rel_path,
                    line=line,
                    col=col,
                    rule=self.code,
                    message=message,
                    snippet=snippet,
                )

    def _judge(self, key: str, record: dict) -> Iterator[str]:
        return iter(())


@register
class BuiltinEscapeRule(_EscapeRule):
    """X801 — builtin exceptions escaping a public entrypoint."""

    code = "X801"
    name = "escape-unwrapped-builtin"
    description = (
        "a builtin exception can escape a public entrypoint (CLI, "
        "run_study, stage run) without being wrapped in the ReproError "
        "taxonomy"
    )

    def _judge(self, key: str, record: dict) -> Iterator[str]:
        for name, data in sorted(record["escapes"].items()):
            if data["category"] == "repro":
                continue
            yield (
                f"builtin {name} can escape entrypoint '{key}' "
                f"un-wrapped; raise a ReproError subclass from it "
                f"[witness: {_witness(data['witness'])}]"
            )


@register
class CliTracebackRule(_EscapeRule):
    """X802 — a CLI ``main`` that can exit with a raw traceback."""

    code = "X802"
    name = "escape-cli-traceback"
    description = (
        "a CLI main() has a non-empty escaping exception set: wrap the "
        "dispatch in a top-level except ReproError that prints the "
        "message and returns an exit code"
    )

    def _judge(self, key: str, record: dict) -> Iterator[str]:
        if record["kind"] != "cli":
            return
        escapes = record["escapes"]
        if not escapes:
            return
        names = ", ".join(sorted(escapes))
        first = sorted(escapes)[0]
        yield (
            f"CLI entrypoint '{key}' can exit with a raw traceback "
            f"({names}); catch ReproError at top level "
            f"[witness: {_witness(escapes[first]['witness'])}]"
        )


@register
class UnchainedWrapRule(Rule):
    """X803 — wrapping ``raise`` in a handler without ``from``."""

    code = "X803"
    name = "escape-unchained-wrap"
    description = (
        "raise of a new exception inside an except handler without "
        "'from': the original traceback is detached from the wrapped "
        "error"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        for handler in self._handlers(ctx.tree):
            for node in self._handler_raises(handler.body):
                if node.exc is None or node.cause is not None:
                    continue
                if not isinstance(node.exc, ast.Call):
                    # ``raise exc`` / ``raise name`` re-raises are the
                    # chain itself, not a wrap.
                    continue
                yield ctx.finding(
                    self,
                    node,
                    "exception wrapped inside an except handler without "
                    "'from': use 'raise ...(...) from <cause>' to keep "
                    "the causal chain",
                )

    @staticmethod
    def _handlers(tree: ast.AST) -> Iterator[ast.ExceptHandler]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler):
                yield node

    @classmethod
    def _handler_raises(
        cls, body: List[ast.stmt]
    ) -> Iterator[ast.Raise]:
        """Raise statements belonging to this handler — not those of
        nested ``try`` statements (they have their own handlers)."""
        for stmt in body:
            if isinstance(stmt, ast.Raise):
                yield stmt
                continue
            if isinstance(
                stmt,
                (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ) or (
                hasattr(ast, "TryStar")
                and isinstance(stmt, getattr(ast, "TryStar"))
            ):
                continue
            for block in cls._stmt_blocks(stmt):
                yield from cls._handler_raises(block)

    @staticmethod
    def _stmt_blocks(stmt: ast.stmt) -> List[List[ast.stmt]]:
        blocks: List[List[ast.stmt]] = []
        for _, value in ast.iter_fields(stmt):
            if isinstance(value, list) and value and all(
                isinstance(item, ast.stmt) for item in value
            ):
                blocks.append(value)
        return blocks
