"""C-rules: cache integrity.

The artifact cache replays a shard whenever its key matches, and the
key folds the stage's *code salt* — so the salt must cover every line
of code that can influence the shard's output.  The runtime computes
that coverage as the stage's module footprint
(:meth:`~repro.lint.program.ProgramModel.footprint`); these rules check
the two ways the coverage can silently go wrong:

* **C401** — a stage's ``plan``/``run``/``merge`` cannot be resolved
  statically, or its closure reaches a first-party (``repro.*``) module
  the analyzer cannot index.  Either way the footprint salt does not
  cover code the stage can execute, and a warm cache may replay stale
  artifacts after an edit.
* **C402** — a module was *deliberately* excluded from the footprint
  with a ``# reprolint: footprint-exempt`` pragma on its import.  That
  is allowed (e.g. a huge generated module whose digest would churn),
  but then cache invalidation for that code is manual — the
  ``StageSpec`` must carry an explicitly bumped ``version`` so the
  exemption leaves a visible, reviewable knob.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.framework import ProjectContext, Rule, register


@register
class SaltFootprintRule(Rule):
    """C401 — every module a stage can reach must fold into its salt."""

    code = "C401"
    name = "salt-footprint"
    description = (
        "stage code reaches a module the cache salt cannot cover "
        "(unresolvable plan/run/merge, or an unindexed repro.* import)"
    )

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        model = project.program_model()
        for decl in model.discover_stages():
            ctx = project.context_for_module(decl.module)
            if ctx is None:
                continue
            for role, rendered in decl.unresolved:
                yield ctx.finding(
                    self,
                    decl.node,
                    f"stage '{decl.name}': {role}={rendered} does not "
                    "resolve to a module-level function, so its module "
                    "footprint (and cache salt) cannot be computed",
                )
            if not decl.seeds:
                continue
            footprint = model.footprint(sorted(set(decl.seeds.values())))
            for missing in footprint.missing:
                yield ctx.finding(
                    self,
                    decl.node,
                    f"stage '{decl.name}' reaches '{missing}', which is "
                    "not in the analyzed program; its source cannot be "
                    "folded into the stage's cache salt",
                )


@register
class ExemptVersionRule(Rule):
    """C402 — a footprint-exempt module demands a manual version bump."""

    code = "C402"
    name = "exempt-needs-version"
    description = (
        "StageSpec whose footprint exempts a module (# reprolint: "
        "footprint-exempt) without an explicit version bump (version "
        "must be set and != '1')"
    )

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        model = project.program_model()
        for decl in model.discover_stages():
            ctx = project.context_for_module(decl.module)
            if ctx is None or not decl.seeds:
                continue
            footprint = model.footprint(sorted(set(decl.seeds.values())))
            if not footprint.exempted:
                continue
            if decl.version_explicit and decl.version != "1":
                continue
            exempted = ", ".join(footprint.exempted)
            yield ctx.finding(
                self,
                decl.node,
                f"stage '{decl.name}' exempts [{exempted}] from its salt "
                "footprint; cache invalidation for that code is manual — "
                "set an explicit bumped version= on the StageSpec",
            )
