"""D-rules: bit-for-bit determinism.

The reproduction's credibility rests on the same seed producing the same
tables on every machine.  These rules ban the three classic ways that
property rots: shared/ad-hoc RNG state, ambient wall-clock or
environment reads inside the simulation layers, and iteration over
unordered sets.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.framework import FileContext, Rule, register

#: File allowed to construct ``random.Random`` directly: the one place
#: the seed-derivation discipline is implemented.
RNG_MODULE_SUFFIX = ("util", "rng.py")

#: Packages that must stay free of wall-clock and environment reads.
DETERMINISTIC_PACKAGES = {"core", "web", "dnssim", "netflow"}

#: Dotted-suffix matches for ambient nondeterminism sources.
WALL_CLOCK_SUFFIXES = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
    ("os", "getenv"),
    ("os", "environ"),
}

SET_TYPE_NAMES = {"Set", "MutableSet", "AbstractSet", "FrozenSet", "set", "frozenset"}
DICT_TYPE_NAMES = {
    "Dict",
    "DefaultDict",
    "Mapping",
    "MutableMapping",
    "dict",
    "defaultdict",
}
WRAPPER_TYPE_NAMES = {"Optional", "Union", "Final", "ClassVar", "Annotated"}
#: set methods that return another (unordered) set
SET_COMBINATORS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}
#: calls that preserve the (nondeterministic) order of a set argument
ORDER_PRESERVING_CALLS = {"list", "tuple", "iter", "reversed"}


def _is_rng_module(ctx: FileContext) -> bool:
    return ctx.path.parts[-2:] == RNG_MODULE_SUFFIX


@register
class GlobalRandomRule(Rule):
    """D101 — the module-level ``random.*`` functions share one hidden
    global stream; any draw from them couples unrelated subsystems."""

    code = "D101"
    name = "global-random-state"
    description = (
        "use of the shared module-level random.* API; draw from an "
        "injected random.Random / RngStreams substream instead"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = ctx.dotted_name(node.func)
                if (
                    name is not None
                    and name.startswith("random.")
                    and name != "random.Random"
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"{name}() draws from the process-global RNG; use an "
                        "injected random.Random / RngStreams substream",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                banned = sorted(
                    alias.name for alias in node.names if alias.name != "Random"
                )
                if banned:
                    yield ctx.finding(
                        self,
                        node,
                        "importing module-level random functions "
                        f"({', '.join(banned)}) binds code to the global RNG",
                    )


@register
class RawRngConstructionRule(Rule):
    """D102 — every stream must come from ``repro.util.rng`` so its seed
    is derived (BLAKE2b) from the experiment seed, not improvised."""

    code = "D102"
    name = "raw-rng-construction"
    description = (
        "random.Random(...) constructed outside util/rng.py; use "
        "RngStreams / seeded_rng / spawn_rng / fixed_rng"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if _is_rng_module(ctx):
            return
        assert ctx.tree is not None
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = ctx.dotted_name(node.func)
                if name == "random.Random":
                    yield ctx.finding(
                        self,
                        node,
                        "construct RNG streams via repro.util.rng "
                        "(RngStreams.get/fork, seeded_rng, spawn_rng, "
                        "fixed_rng), not random.Random(...)",
                    )


@register
class WallClockRule(Rule):
    """D103 — the simulation layers must take time and configuration as
    inputs; reading the wall clock or the environment makes two runs of
    the same seed diverge."""

    code = "D103"
    name = "wall-clock-or-env"
    description = (
        "wall-clock/environment read (time.time, datetime.now, "
        "os.environ, ...) inside a deterministic package"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.package not in DETERMINISTIC_PACKAGES:
            return
        assert ctx.tree is not None
        reported: Set[Tuple[int, int]] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            name = ctx.dotted_name(node)
            if name is None:
                continue
            parts = tuple(name.split("."))
            if len(parts) < 2 or parts[-2:] not in WALL_CLOCK_SUFFIXES:
                continue
            key = (node.lineno, node.col_offset)
            if key in reported:
                continue
            reported.add(key)
            yield ctx.finding(
                self,
                node,
                f"{name} is nondeterministic ambient state; thread simulated "
                "time / explicit config through the call instead",
            )


@register
class HashSeedRule(Rule):
    """D104 — ``hash()`` is salted per process (PYTHONHASHSEED), so any
    value derived from it differs between runs."""

    code = "D104"
    name = "hash-for-seeding"
    description = (
        "builtin hash() outside __hash__/__eq__; use "
        "repro.util.rng.derive_seed for stable seed derivation"
    )

    _EXEMPT_DEFS = {"__hash__", "__eq__"}

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        yield from self._visit(ctx, ctx.tree, in_exempt_def=False)

    def _visit(
        self, ctx: FileContext, node: ast.AST, in_exempt_def: bool
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            exempt = in_exempt_def
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                exempt = exempt or child.name in self._EXEMPT_DEFS
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Name)
                and child.func.id == "hash"
                and not in_exempt_def
            ):
                yield ctx.finding(
                    self,
                    child,
                    "hash() is salted per process; use "
                    "repro.util.rng.derive_seed (BLAKE2b) instead",
                )
            yield from self._visit(ctx, child, exempt)


class _SetTaint:
    """Classification of an expression / variable for D105."""

    SET = "set"
    DICT_OF_SET = "dict-of-set"


def _annotation_taint(ann: Optional[ast.AST]) -> Optional[str]:
    """Classify a type annotation as set-like, dict-of-set, or neither."""
    if ann is None:
        return None
    if isinstance(ann, ast.Name):
        return _SetTaint.SET if ann.id in SET_TYPE_NAMES else None
    if isinstance(ann, ast.Attribute):
        return _SetTaint.SET if ann.attr in SET_TYPE_NAMES else None
    if isinstance(ann, ast.Subscript):
        base: Optional[str] = None
        if isinstance(ann.value, ast.Name):
            base = ann.value.id
        elif isinstance(ann.value, ast.Attribute):
            base = ann.value.attr
        if base in SET_TYPE_NAMES:
            return _SetTaint.SET
        slice_node = ann.slice
        if isinstance(slice_node, ast.Index):  # pragma: no cover (py<3.9)
            slice_node = slice_node.value
        if base in DICT_TYPE_NAMES:
            if (
                isinstance(slice_node, ast.Tuple)
                and len(slice_node.elts) == 2
                and _annotation_taint(slice_node.elts[1]) == _SetTaint.SET
            ):
                return _SetTaint.DICT_OF_SET
            return None
        if base in WRAPPER_TYPE_NAMES:
            args = (
                slice_node.elts if isinstance(slice_node, ast.Tuple) else [slice_node]
            )
            for arg in args:
                taint = _annotation_taint(arg)
                if taint is not None:
                    return taint
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            return _annotation_taint(ast.parse(ann.value, mode="eval").body)
        except SyntaxError:
            return None
    return None


class _SetIterVisitor(ast.NodeVisitor):
    """Single-file flow-insensitive-ish tracker for set-typed values.

    Scopes are a stack of ``name -> taint`` maps; class bodies
    additionally record ``self.<attr>`` annotations (collected in a
    pre-pass over the whole class, so methods defined before
    ``__init__`` still see the attribute types).
    """

    def __init__(self, rule: Rule, ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.findings: List[Finding] = []
        self.scopes: List[Dict[str, Optional[str]]] = [{}]
        self.class_attrs: List[Dict[str, Optional[str]]] = []
        # File-wide attribute fallback: any attribute annotated set-like
        # in *some* class of this file taints obj.<attr> reads, so
        # iterating a dataclass's Set field through a local variable
        # (``for f in record.fqdns``) is still caught.
        self.file_attrs: Dict[str, Optional[str]] = {}
        assert ctx.tree is not None
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                self.file_attrs.update(self._collect_class_attrs(node))

    # -- taint resolution ------------------------------------------------
    def lookup(self, name: str) -> Optional[str]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def expr_taint(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return _SetTaint.SET
        if isinstance(node, ast.Name):
            return self.lookup(node.id)
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in ("self", "cls")
                and self.class_attrs
            ):
                taint = self.class_attrs[-1].get(node.attr)
                if taint is not None:
                    return taint
            return self.file_attrs.get(node.attr)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            left = self.expr_taint(node.left)
            right = self.expr_taint(node.right)
            if _SetTaint.SET in (left, right):
                return _SetTaint.SET
            return None
        if isinstance(node, ast.IfExp):
            taints = {self.expr_taint(node.body), self.expr_taint(node.orelse)}
            taints.discard(None)
            return next(iter(taints), None)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return _SetTaint.SET
                if func.id == "sorted":
                    return None
                if func.id in ORDER_PRESERVING_CALLS and node.args:
                    return self.expr_taint(node.args[0])
                return None
            if isinstance(func, ast.Attribute):
                base_taint = self.expr_taint(func.value)
                if func.attr in SET_COMBINATORS and base_taint == _SetTaint.SET:
                    return _SetTaint.SET
                if func.attr == "get" and base_taint == _SetTaint.DICT_OF_SET:
                    return _SetTaint.SET
                if func.attr == "values" and base_taint == _SetTaint.DICT_OF_SET:
                    # iterating the values themselves is dict-ordered
                    # (fine); each *element* is a set, which we cannot
                    # track through the loop variable — leave untainted.
                    return None
                if func.attr == "setdefault" and base_taint == _SetTaint.DICT_OF_SET:
                    return _SetTaint.SET
            return None
        if isinstance(node, ast.Subscript):
            if self.expr_taint(node.value) == _SetTaint.DICT_OF_SET:
                return _SetTaint.SET
            return None
        return None

    # -- scope bookkeeping ----------------------------------------------
    def _bind(self, target: ast.AST, taint: Optional[str]) -> None:
        if isinstance(target, ast.Name):
            self.scopes[-1][target.id] = taint
        elif isinstance(target, ast.Attribute):
            if (
                isinstance(target.value, ast.Name)
                and target.value.id in ("self", "cls")
                and self.class_attrs
                and taint is not None
            ):
                self.class_attrs[-1][target.attr] = taint

    def visit_Assign(self, node: ast.Assign) -> None:
        taint = self.expr_taint(node.value)
        for target in node.targets:
            self._bind(target, taint)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        taint = _annotation_taint(node.annotation)
        if taint is None and node.value is not None:
            taint = self.expr_taint(node.value)
        self._bind(node.target, taint)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.generic_visit(node)

    def _collect_class_attrs(self, node: ast.ClassDef) -> Dict[str, Optional[str]]:
        attrs: Dict[str, Optional[str]] = {}
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.AnnAssign):
                taint = _annotation_taint(stmt.annotation)
                if taint is None:
                    continue
                if isinstance(stmt.target, ast.Name):
                    attrs[stmt.target.id] = taint
                elif isinstance(stmt.target, ast.Attribute) and isinstance(
                    stmt.target.value, ast.Name
                ):
                    if stmt.target.value.id in ("self", "cls"):
                        attrs[stmt.target.attr] = taint
        return attrs

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_attrs.append(self._collect_class_attrs(node))
        self.scopes.append({})
        self.generic_visit(node)
        self.scopes.pop()
        self.class_attrs.pop()

    def _visit_function(self, node: ast.AST) -> None:
        scope: Dict[str, Optional[str]] = {}
        args = getattr(node, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                taint = _annotation_taint(arg.annotation)
                if taint is not None:
                    scope[arg.arg] = taint
        self.scopes.append(scope)
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    # -- iteration checks ------------------------------------------------
    def _check_iter(self, iter_node: ast.AST) -> None:
        if self.expr_taint(iter_node) == _SetTaint.SET:
            self.findings.append(
                self.ctx.finding(
                    self.rule,
                    iter_node,
                    "iteration over a set has no stable order; wrap the "
                    "iterable in sorted(...)",
                )
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self._bind(node.target, None)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self._bind(node.target, None)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        self.scopes.append({})
        for gen in node.generators:
            self._check_iter(gen.iter)
            self._bind(gen.target, None)
        self.generic_visit(node)
        self.scopes.pop()

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


@register
class UnsortedSetIterationRule(Rule):
    """D105 — iterating a set yields a platform/hash-seed dependent
    order; every loop or comprehension over a set-typed value must go
    through ``sorted(...)``."""

    code = "D105"
    name = "unsorted-set-iteration"
    description = (
        "for-loop or comprehension over a set()/Set[...]-typed value "
        "without sorted(...)"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        visitor = _SetIterVisitor(self, ctx)
        visitor.visit(ctx.tree)
        return visitor.findings
