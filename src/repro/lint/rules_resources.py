"""I-rules: resource discipline.

Stage shards may run in worker subprocesses and may be skipped entirely
on a cache hit, so shard code must not acquire ambient resources: every
file lands through the atomic helpers in :mod:`repro.io` /
``repro.obs.persist`` (write-temp-then-rename, so a crashed worker
never leaves a half-written artifact), and a simulated study never
opens sockets or spawns subprocesses at all.  This is the prerequisite
for the always-on ``repro serve`` shape on the roadmap: a handler that
leaks file handles or shells out works in a one-shot CLI and falls over
in a long-lived process.

* **I901** — raw ``open()`` reachable from a stage ``run`` outside the
  sanctioned I/O modules;
* **I902** — ``socket`` / ``subprocess`` / ``os.system`` use anywhere
  in non-test code.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.dataflow import (
    DataflowAnalysis,
    dataflow_for,
    is_io_sanctioned,
    is_serve_module,
    is_test_module,
)
from repro.lint.findings import Finding
from repro.lint.framework import ProjectContext, Rule, register


class _ResourceRule(Rule):
    """Shared driver over the dataflow engine's raw-I/O site table."""

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        if not project.files:
            return
        df = dataflow_for(project)
        yield from self._check(project, df)

    def _check(
        self, project: ProjectContext, df: DataflowAnalysis
    ) -> Iterable[Finding]:
        return ()


@register
class UnmanagedOpenRule(_ResourceRule):
    """I901 — raw ``open()`` on a stage run path."""

    code = "I901"
    name = "io-unmanaged-open"
    description = (
        "open() in code reachable from a stage's run, outside repro.io/"
        "obs.persist: shard artifacts must land through the atomic "
        "helpers"
    )

    def _check(
        self, project: ProjectContext, df: DataflowAnalysis
    ) -> Iterable[Finding]:
        run_reach = df.run_reachable()
        sites = df.io_sites()
        for ref in sorted(run_reach):
            if is_io_sanctioned(ref[0]):
                continue
            ctx = project.context_for_module(ref[0])
            if ctx is None or is_test_module(ctx.rel_path, ref[0]):
                continue
            for site in sites.get(ref, ()):
                if site.rendered != "open":
                    continue
                for stage in run_reach[ref]:
                    chain = df.run_path_chain(stage, ref)
                    witness = " -> ".join(
                        chain + [f"{ctx.rel_path}:{site.line}"]
                    )
                    yield Finding(
                        path=ctx.rel_path,
                        line=site.line,
                        col=site.col,
                        rule=self.code,
                        message=(
                            f"raw open() on the run path of stage "
                            f"'{stage}'; use repro.io / obs.persist "
                            f"atomic helpers [witness: {witness}]"
                        ),
                        snippet=site.snippet,
                    )


@register
class ProcessEscapeRule(_ResourceRule):
    """I902 — sockets or subprocesses in non-test code."""

    code = "I902"
    name = "io-process-escape"
    description = (
        "socket/subprocess/os.system call in library code: a simulated "
        "study must not touch the network or spawn processes (sole "
        "carve-out: socket use inside a serve package — the service "
        "transport has to listen somewhere)"
    )

    def _check(
        self, project: ProjectContext, df: DataflowAnalysis
    ) -> Iterable[Finding]:
        for ref, sites in sorted(df.io_sites().items()):
            ctx = project.context_for_module(ref[0])
            if ctx is None or is_test_module(ctx.rel_path, ref[0]):
                continue
            for site in sites:
                if site.rendered == "open":
                    continue
                # The serve layer's listening socket is the one
                # sanctioned network touchpoint; subprocess/os.system
                # stay forbidden even there.
                if is_serve_module(ref[0]) and (
                    site.rendered == "socket"
                    or site.rendered.startswith("socket.")
                ):
                    continue
                yield Finding(
                    path=ctx.rel_path,
                    line=site.line,
                    col=site.col,
                    rule=self.code,
                    message=(
                        f"{site.rendered}(...) in {site.function[1]}: "
                        "the simulation is hermetic — no sockets, no "
                        "subprocesses"
                    ),
                    snippet=site.snippet,
                )
