"""Execution-context analysis over the whole-program call graph.

The runtime mixes four execution contexts: the asyncio event loop that
``repro.serve`` handlers run on, the ``repro-serve-job`` worker threads
that execute studies, the process-pool shard workers that run stage
bodies, and the plain ``main`` thread of the CLIs.  Code that is safe in
one context is a hazard in another — a raw ``open()`` is fine in a
worker thread and a stall on the event loop; a module-level dict write
is fine on ``main`` and a race from two job threads.

:class:`ContextAnalysis` classifies every function by the set of
contexts it is *reachable from*, by BFS over the
:class:`~repro.lint.program.ProgramModel` call graph from known
entrypoints:

* **async** — every ``async def`` (its body runs on the event loop);
* **thread** — targets of ``loop.run_in_executor``, ``executor.submit``
  and ``threading.Thread(target=...)``;
* **shard** — every discovered stage's ``run`` callable (executed in
  process-pool workers);
* **main** — every ``main`` function (CLI entry convention).

Propagation follows plain call edges.  Two edge kinds change context
instead of propagating it: offloads (``run_in_executor`` / ``submit`` /
``Thread(target=...)``) move the callee to **thread**, and
``call_soon_threadsafe`` / ``call_soon`` / ``call_later`` /
``call_at`` move the callback to **async**.  Calling an ``async def``
from sync code only creates a coroutine, so async bodies never inherit
their callers' contexts — they are seeded as **async** directly.

On top of the context map the analysis collects the hazard sites the
T-family rules (:mod:`repro.lint.rules_concurrency`) report:

* blocking calls (``time.sleep``, raw ``open``, ``run_study``,
  blocking socket helpers) and the contexts that reach them;
* module-level / instance-attribute writes without a lock witness,
  grouped by target so cross-context write sets can be detected;
* event-loop APIs touched from thread context without
  ``call_soon_threadsafe``;
* write-mode file opens outside the sanctioned atomic-write helpers
  (:mod:`repro.obs.persist`, the artifact cache's ``.tmp.{pid}.{tid}``
  path) reachable from a concurrent context.

Every reported site carries a ``file:line`` witness chain from a
context seed down to the site, rendered exactly like the dataflow
witness chains.  :func:`ContextAnalysis.report_json` emits the whole
picture as the versioned ``repro.lint/concurrency/v1`` document the
CLI writes via ``--concurrency-json``.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.lint.dataflow import (
    DataflowAnalysis,
    dataflow_for_model,
    is_io_sanctioned,
    is_test_module,
)
from repro.lint.program import FunctionInfo, ModuleInfo, ProgramModel

#: schema tag of the report emitted by ``--concurrency-json``
CONCURRENCY_SCHEMA = "repro.lint/concurrency/v1"

#: the execution contexts, in seed-priority order
CONTEXTS = ("main", "async", "thread", "shard")

#: offload attribute → positional index of the callable argument; the
#: callee runs on an executor thread
_THREAD_OFFLOADS = {"run_in_executor": 1, "submit": 0}

#: loop-scheduling attribute → callable index; the callee runs on the
#: event loop regardless of which context schedules it
_LOOP_OFFLOADS = {
    "call_soon_threadsafe": 0,
    "call_soon": 0,
    "call_later": 1,
    "call_at": 1,
}

#: loop APIs that are only safe to touch *from* loop context; threads
#: must hop through ``call_soon_threadsafe`` instead
_LOOP_ONLY_ATTRS = ("call_soon", "call_later", "call_at", "create_task")
_LOOP_ONLY_DOTTED = ("asyncio.ensure_future", "asyncio.create_task")

#: dotted call names that block the calling thread
_BLOCKING_DOTTED = (
    "time.sleep",
    "socket.create_connection",
    "socket.getaddrinfo",
    "socket.gethostbyname",
)

#: container methods that mutate their receiver in place
_MUTATORS = (
    "append", "add", "update", "extend", "setdefault", "pop", "popitem",
    "clear", "remove", "discard", "insert", "sort", "reverse",
)

#: write chains longer than this are truncated (defensive bound)
_MAX_CHAIN_HOPS = 12

FunctionRef = Tuple[str, str]


def is_atomic_write_module(module: str) -> bool:
    """Modules that own the sanctioned atomic write paths: the
    ``repro.io`` package, :mod:`repro.obs.persist` and the artifact
    cache (its ``store`` writes through ``.tmp.{pid}.{thread_ident}``
    followed by ``os.replace``)."""
    return is_io_sanctioned(module) or module.split(".")[-1] == "cache"


@dataclass(frozen=True)
class BlockingSite:
    """One call that blocks the calling thread."""

    rendered: str
    line: int
    snippet: str


@dataclass(frozen=True)
class LoopTouch:
    """One event-loop-only API call (``create_task``, ``call_soon``...)."""

    rendered: str
    line: int
    snippet: str


@dataclass(frozen=True)
class RawWrite:
    """One write-mode ``open()`` / ``Path.write_*`` call."""

    rendered: str
    line: int
    snippet: str


@dataclass(frozen=True)
class WriteSite:
    """One mutation of module-level or instance-attribute state.

    ``target`` is ``("module", module, name)`` for module globals and
    ``("attr", module, class, attr)`` for instance attributes; writes
    to the same target from different functions form one shared-state
    write set.
    """

    target: Tuple[str, ...]
    function: FunctionRef
    line: int
    snippet: str
    locked: bool


@dataclass
class ContextFinding:
    """One report entry: a hazard site plus its witness chain."""

    rule: str
    context: str
    function: FunctionRef
    site: str
    snippet: str
    chain: List[str] = field(default_factory=list)
    detail: str = ""


class ContextAnalysis:
    """Context classification + hazard-site scans over one model."""

    def __init__(self, model: ProgramModel) -> None:
        self.model = model
        self.df: DataflowAnalysis = dataflow_for_model(model)
        self._contexts: Optional[Dict[FunctionRef, Set[str]]] = None
        self._parents: Dict[
            str, Dict[FunctionRef, Optional[Tuple[FunctionRef, int]]]
        ] = {}
        self._seeds: Optional[Dict[str, Tuple[FunctionRef, ...]]] = None
        self._edges_memo: Dict[
            FunctionRef,
            Tuple[
                Tuple[Tuple[FunctionRef, int], ...],
                Tuple[Tuple[FunctionRef, str, int], ...],
            ],
        ] = {}
        self._self_attr_types: Optional[
            Dict[Tuple[str, str], Dict[str, Tuple[str, str]]]
        ] = None
        self._write_sites: Optional[Tuple[WriteSite, ...]] = None

    # -- seeds -----------------------------------------------------------

    def seeds(self) -> Dict[str, Tuple[FunctionRef, ...]]:
        """Context → entrypoint functions seeded into that context."""
        if self._seeds is not None:
            return self._seeds
        out: Dict[str, List[FunctionRef]] = {c: [] for c in CONTEXTS}
        for module_name in sorted(self.model.modules):
            info = self.model.modules[module_name]
            for qualname in sorted(info.functions):
                fn = info.functions[qualname]
                ref = (module_name, qualname)
                if isinstance(fn.node, ast.AsyncFunctionDef):
                    out["async"].append(ref)
                if qualname.split(".")[-1] == "main":
                    out["main"].append(ref)
        for decl in self.model.discover_stages():
            run_seed = decl.seeds.get("run")
            if run_seed is not None and self.model.function(run_seed):
                out["shard"].append(run_seed)
        self._seeds = {c: tuple(refs) for c, refs in out.items()}
        return self._seeds

    # -- the context map -------------------------------------------------

    def contexts(self) -> Dict[FunctionRef, Set[str]]:
        """Function → the set of contexts whose execution reaches it."""
        if self._contexts is not None:
            return self._contexts
        contexts: Dict[FunctionRef, Set[str]] = {}
        parents: Dict[
            str, Dict[FunctionRef, Optional[Tuple[FunctionRef, int]]]
        ] = {c: {} for c in CONTEXTS}
        queue: deque = deque()

        def visit(
            ref: FunctionRef,
            context: str,
            parent: Optional[Tuple[FunctionRef, int]],
        ) -> None:
            if self.model.function(ref) is None:
                return
            seen = contexts.setdefault(ref, set())
            if context in seen:
                return
            seen.add(context)
            parents[context][ref] = parent
            queue.append((ref, context))

        for context, refs in self.seeds().items():
            for ref in refs:
                visit(ref, context, None)
        while queue:
            ref, context = queue.popleft()
            sync_edges, offload_edges = self._edges(ref)
            for target, line in sync_edges:
                fn = self.model.function(target)
                if fn is not None and isinstance(
                    fn.node, ast.AsyncFunctionDef
                ):
                    # calling an async def only builds a coroutine; its
                    # body runs on the loop, where it is already seeded
                    continue
                visit(target, context, (ref, line))
            for target, target_context, line in offload_edges:
                visit(target, target_context, (ref, line))
        self._contexts = contexts
        self._parents = parents
        return contexts

    def contexts_of(self, ref: FunctionRef) -> Tuple[str, ...]:
        """The contexts reaching ``ref``, in canonical order."""
        reached = self.contexts().get(ref, set())
        return tuple(c for c in CONTEXTS if c in reached)

    # -- witness chains --------------------------------------------------

    def chain(self, context: str, ref: FunctionRef) -> List[str]:
        """``file:line`` hops from a ``context`` seed down to ``ref``.

        The first hop is the seed's definition line; every later hop is
        the call site in the parent that hands execution onward.
        """
        self.contexts()
        tree = self._parents.get(context, {})
        if ref not in tree:
            return [self._render_def(ref)]
        path: List[FunctionRef] = []
        lines: List[Optional[int]] = []
        cursor: Optional[FunctionRef] = ref
        seen: Set[FunctionRef] = set()
        while cursor is not None and cursor not in seen and (
            len(path) < _MAX_CHAIN_HOPS
        ):
            seen.add(cursor)
            path.append(cursor)
            parent = tree.get(cursor)
            if parent is None:
                lines.append(None)
                cursor = None
            else:
                lines.append(parent[1])
                cursor = parent[0]
        path.reverse()
        lines.reverse()
        chain: List[str] = [self._render_def(path[0])]
        for index in range(1, len(path)):
            chain.append(
                self._render_site(path[index - 1], lines[index], path[index])
            )
        return chain

    def _render_def(self, ref: FunctionRef) -> str:
        info = self.model.modules.get(ref[0])
        fn = self.model.function(ref)
        if info is None or fn is None:
            return f"{ref[0]}:{ref[1]}"
        line = fn.node.lineno
        return f"{info.ctx.rel_path}:{line} {self.df._snippet(info, line)}"

    def _render_site(
        self, parent: FunctionRef, line: Optional[int], target: FunctionRef
    ) -> str:
        info = self.model.modules.get(parent[0])
        if info is None or line is None:
            return f"{target[0]}:{target[1]}"
        return f"{info.ctx.rel_path}:{line} {self.df._snippet(info, line)}"

    # -- call edges ------------------------------------------------------

    def _edges(
        self, ref: FunctionRef
    ) -> Tuple[
        Tuple[Tuple[FunctionRef, int], ...],
        Tuple[Tuple[FunctionRef, str, int], ...],
    ]:
        """(sync call edges, offload edges) out of one function."""
        cached = self._edges_memo.get(ref)
        if cached is not None:
            return cached
        info = self.model.modules[ref[0]]
        fn = info.functions[ref[1]]
        callee_at = self.df._callee_at(fn)
        local_types = self.df._local_types(info, fn, callee_at)
        sync: List[Tuple[FunctionRef, int]] = []
        offload: List[Tuple[FunctionRef, str, int]] = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            hop = self._offload_edge(info, fn, node, local_types)
            if hop is not None:
                offload.append(hop)
                continue
            target: Optional[FunctionRef] = None
            callee = callee_at.get((node.lineno, node.col_offset))
            if callee is not None and callee.kind == "function":
                target = (callee.module, callee.qualname)
            elif callee is not None and callee.kind == "class":
                ctor = (callee.module, f"{callee.qualname}.__init__")
                if self.model.function(ctor) is not None:
                    target = ctor
            if target is None:
                target = self.df._method_target(fn, node, local_types)
            if target is None:
                target = self._self_attr_method_target(info, fn, node)
            if target is not None and self.model.function(target):
                sync.append((target, node.lineno))
        result = (tuple(sync), tuple(offload))
        self._edges_memo[ref] = result
        return result

    def _offload_edge(
        self,
        info: ModuleInfo,
        fn: FunctionInfo,
        node: ast.Call,
        local_types: Dict[str, Tuple[str, str]],
    ) -> Optional[Tuple[FunctionRef, str, int]]:
        """An offload/scheduling edge out of one call, if it is one."""
        func = node.func
        dotted = info.ctx.dotted_name(func)
        if dotted is not None and dotted.split(".")[-1] == "Thread":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    target = self._callable_ref(
                        info, fn, keyword.value, local_types
                    )
                    if target is not None:
                        return (target, "thread", node.lineno)
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        index = _THREAD_OFFLOADS.get(attr)
        context = "thread"
        if index is None:
            index = _LOOP_OFFLOADS.get(attr)
            context = "async"
        if index is None or len(node.args) <= index:
            return None
        target = self._callable_ref(info, fn, node.args[index], local_types)
        if target is None:
            return None
        return (target, context, node.lineno)

    def _callable_ref(
        self,
        info: ModuleInfo,
        fn: FunctionInfo,
        expr: ast.expr,
        local_types: Dict[str, Tuple[str, str]],
    ) -> Optional[FunctionRef]:
        """Resolve a callable-valued expression to a model function."""
        if isinstance(expr, ast.Name):
            symbol = info.symbols.get(expr.id)
            if symbol is not None and symbol.kind == "function":
                ref = (symbol.module, symbol.qualname)
                return ref if self.model.function(ref) else None
            return None
        if not (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
        ):
            return None
        base = expr.value.id
        owner: Optional[Tuple[str, str]] = None
        if base in ("self", "cls") and "." in fn.qualname:
            owner = (fn.module, fn.qualname.rsplit(".", 1)[0])
        elif base in local_types:
            owner = local_types[base]
        else:
            symbol = info.symbols.get(base)
            if symbol is not None and symbol.kind == "module":
                origin = self.model.modules.get(symbol.module)
                target = (
                    origin.symbols.get(expr.attr) if origin else None
                )
                if target is not None and target.kind == "function":
                    ref = (target.module, target.qualname)
                    return ref if self.model.function(ref) else None
            return None
        if owner is None:
            return None
        callee = self.model._lookup_method(
            owner[0], owner[1], expr.attr, rendered=f"{base}.{expr.attr}"
        )
        if callee.kind != "function":
            return None
        ref = (callee.module, callee.qualname)
        return ref if self.model.function(ref) else None

    # -- instance-attribute typing ---------------------------------------

    def self_attr_types(
        self,
    ) -> Dict[Tuple[str, str], Dict[str, Tuple[str, str]]]:
        """(module, class) → attribute → (module, class) of the value,
        from unambiguous ``self.x = Cls(...)`` constructor assignments
        (including the ``a if cond else Cls(...)`` default idiom)."""
        if self._self_attr_types is not None:
            return self._self_attr_types
        table: Dict[Tuple[str, str], Dict[str, Tuple[str, str]]] = {}
        for module_name, info in self.model.modules.items():
            for class_name, cls in info.classes.items():
                attrs: Dict[str, Optional[Tuple[str, str]]] = {}
                for method_qual in cls.methods.values():
                    method = info.functions.get(method_qual)
                    if method is None:
                        continue
                    callee_at = self.df._callee_at(method)
                    for node in ast.walk(method.node):
                        self._bind_self_attr(node, callee_at, attrs)
                table[(module_name, class_name)] = {
                    name: owner
                    for name, owner in attrs.items()
                    if owner is not None
                }
        self._self_attr_types = table
        return table

    def _bind_self_attr(
        self,
        node: ast.AST,
        callee_at: Dict[Tuple[int, int], Any],
        attrs: Dict[str, Optional[Tuple[str, str]]],
    ) -> None:
        if isinstance(node, ast.Assign):
            targets: List[ast.expr] = list(node.targets)
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            return
        calls = [value]
        if isinstance(value, ast.IfExp):
            calls = [value.body, value.orelse]
        owner: Optional[Tuple[str, str]] = None
        for candidate in calls:
            if not isinstance(candidate, ast.Call):
                continue
            callee = callee_at.get(
                (candidate.lineno, candidate.col_offset)
            )
            if callee is not None and callee.kind == "class":
                owner = (callee.module, callee.qualname)
                break
        if owner is None:
            return
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                known = attrs.get(target.attr)
                if known is not None and known != owner:
                    attrs[target.attr] = None
                elif target.attr not in attrs or known is None:
                    attrs.setdefault(target.attr, owner)

    def _self_attr_method_target(
        self, info: ModuleInfo, fn: FunctionInfo, node: ast.Call
    ) -> Optional[FunctionRef]:
        """Resolve ``self.attr.method(...)`` through the constructor-
        assignment type table (one attribute hop)."""
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
            and "." in fn.qualname
        ):
            return None
        owner_class = (fn.module, fn.qualname.rsplit(".", 1)[0])
        attr_types = self.self_attr_types().get(owner_class, {})
        owner = attr_types.get(func.value.attr)
        if owner is None:
            return None
        callee = self.model._lookup_method(
            owner[0], owner[1], func.attr,
            rendered=f"self.{func.value.attr}.{func.attr}",
        )
        if callee.kind != "function":
            return None
        ref = (callee.module, callee.qualname)
        return ref if self.model.function(ref) else None

    # -- hazard site scans -----------------------------------------------

    def blocking_sites(self, ref: FunctionRef) -> Tuple[BlockingSite, ...]:
        """Blocking calls anywhere inside one function body."""
        info = self.model.modules[ref[0]]
        fn = info.functions[ref[1]]
        return self._blocking_in(info, fn, fn.node, include_nested=True)

    def direct_blocking_sites(
        self, ref: FunctionRef
    ) -> Tuple[BlockingSite, ...]:
        """Blocking calls in the function's own body, excluding nested
        ``def`` bodies (those run when *called*, not when defined)."""
        info = self.model.modules[ref[0]]
        fn = info.functions[ref[1]]
        return self._blocking_in(info, fn, fn.node, include_nested=False)

    def _blocking_in(
        self,
        info: ModuleInfo,
        fn: FunctionInfo,
        root: ast.AST,
        include_nested: bool,
    ) -> Tuple[BlockingSite, ...]:
        callee_at = self.df._callee_at(fn)
        sites: List[BlockingSite] = []
        for node in self._walk(root, include_nested):
            if not isinstance(node, ast.Call):
                continue
            rendered = self._blocking_name(info, callee_at, node)
            if rendered is None:
                continue
            sites.append(BlockingSite(
                rendered=rendered,
                line=node.lineno,
                snippet=self.df._snippet(info, node.lineno),
            ))
        return tuple(sites)

    @staticmethod
    def _walk(root: ast.AST, include_nested: bool):
        if include_nested:
            yield from ast.walk(root)
            return
        queue: deque = deque(ast.iter_child_nodes(root))
        while queue:
            node = queue.popleft()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield node
            queue.extend(ast.iter_child_nodes(node))

    def _blocking_name(
        self,
        info: ModuleInfo,
        callee_at: Dict[Tuple[int, int], Any],
        node: ast.Call,
    ) -> Optional[str]:
        dotted = info.ctx.dotted_name(node.func)
        if dotted == "open" or dotted in _BLOCKING_DOTTED:
            return dotted
        callee = callee_at.get((node.lineno, node.col_offset))
        if callee is not None and callee.kind == "function" and (
            callee.qualname.split(".")[-1] == "run_study"
        ):
            return f"{callee.module}:{callee.qualname}"
        return None

    def loop_touches(self, ref: FunctionRef) -> Tuple[LoopTouch, ...]:
        """Event-loop-only API calls inside one function."""
        info = self.model.modules[ref[0]]
        fn = info.functions[ref[1]]
        sites: List[LoopTouch] = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            rendered: Optional[str] = None
            if isinstance(node.func, ast.Attribute) and (
                node.func.attr in _LOOP_ONLY_ATTRS
            ):
                rendered = node.func.attr
            else:
                dotted = info.ctx.dotted_name(node.func)
                if dotted in _LOOP_ONLY_DOTTED:
                    rendered = dotted
            if rendered is None:
                continue
            sites.append(LoopTouch(
                rendered=rendered,
                line=node.lineno,
                snippet=self.df._snippet(info, node.lineno),
            ))
        return tuple(sites)

    def raw_writes(self, ref: FunctionRef) -> Tuple[RawWrite, ...]:
        """Write-mode ``open()`` / ``Path.write_*`` calls in one
        function (the sites T1005 gates behind the atomic helpers)."""
        info = self.model.modules[ref[0]]
        fn = info.functions[ref[1]]
        sites: List[RawWrite] = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            rendered: Optional[str] = None
            dotted = info.ctx.dotted_name(node.func)
            if dotted == "open" and self._is_write_open(node):
                rendered = "open"
            elif isinstance(node.func, ast.Attribute) and (
                node.func.attr in ("write_text", "write_bytes")
            ):
                rendered = node.func.attr
            if rendered is None:
                continue
            sites.append(RawWrite(
                rendered=rendered,
                line=node.lineno,
                snippet=self.df._snippet(info, node.lineno),
            ))
        return tuple(sites)

    @staticmethod
    def _is_write_open(node: ast.Call) -> bool:
        mode: Optional[ast.expr] = None
        if len(node.args) > 1:
            mode = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if not isinstance(mode, ast.Constant) or not isinstance(
            mode.value, str
        ):
            return False
        return any(flag in mode.value for flag in ("w", "a", "x", "+"))

    # -- shared-state writes ---------------------------------------------

    def write_sites(self) -> Tuple[WriteSite, ...]:
        """Every module-global / instance-attribute mutation site."""
        if self._write_sites is not None:
            return self._write_sites
        sites: List[WriteSite] = []
        for module_name in sorted(self.model.modules):
            info = self.model.modules[module_name]
            for qualname in sorted(info.functions):
                fn = info.functions[qualname]
                if qualname.split(".")[-1] in (
                    "__init__", "__new__", "__post_init__",
                ):
                    # constructors initialise per-instance state before
                    # the instance can be shared — not a write set
                    continue
                sites.extend(self._writes_in(info, fn))
        self._write_sites = tuple(sites)
        return self._write_sites

    def _writes_in(
        self, info: ModuleInfo, fn: FunctionInfo
    ) -> List[WriteSite]:
        ref = (info.name, fn.qualname)
        local = set(self.model.local_names(fn.node))
        for node in ast.walk(fn.node):
            # `global X; X = ...` binds module state, not a local
            if isinstance(node, ast.Global):
                local.difference_update(node.names)
        locked_spans = self._lock_spans(info, fn.node)
        sites: List[WriteSite] = []

        def emit(target: Tuple[str, ...], node: ast.AST) -> None:
            line = node.lineno
            sites.append(WriteSite(
                target=target,
                function=ref,
                line=line,
                snippet=self.df._snippet(info, line),
                locked=any(
                    start < line <= end for start, end in locked_spans
                ),
            ))

        def module_target(name: str) -> Optional[Tuple[str, ...]]:
            if name in local or name not in info.constant_nodes:
                return None
            if self._is_thread_local(info, name):
                return None
            return ("module", info.name, name)

        def attr_target(attr: str) -> Optional[Tuple[str, ...]]:
            if "." not in fn.qualname:
                return None
            return ("attr", info.name, fn.qualname.rsplit(".", 1)[0], attr)

        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target_node in targets:
                    target = self._write_target(
                        target_node, module_target, attr_target
                    )
                    if target is not None:
                        emit(target, node)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ) and node.func.attr in _MUTATORS:
                receiver = node.func.value
                target = None
                if isinstance(receiver, ast.Name):
                    target = module_target(receiver.id)
                elif (
                    isinstance(receiver, ast.Attribute)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id == "self"
                ):
                    target = attr_target(receiver.attr)
                if target is not None:
                    emit(target, node)
        return sites

    def _write_target(self, node, module_target, attr_target):
        if isinstance(node, ast.Name):
            return module_target(node.id)
        if isinstance(node, ast.Subscript):
            return self._write_target(
                node.value, module_target, attr_target
            )
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            if node.value.id == "self":
                return attr_target(node.attr)
            return module_target(node.value.id)
        return None

    @staticmethod
    def _is_thread_local(info: ModuleInfo, name: str) -> bool:
        """Module state initialised as ``threading.local()`` is
        per-thread by construction — never a cross-context target."""
        decl = info.constant_nodes.get(name)
        value = getattr(decl, "value", None)
        if not isinstance(value, ast.Call):
            return False
        dotted = info.ctx.dotted_name(value.func)
        return dotted is not None and dotted.split(".")[-1] == "local"

    def _lock_spans(
        self, info: ModuleInfo, root: ast.AST
    ) -> List[Tuple[int, int]]:
        """(start, end) line spans of ``with <...lock...>:`` bodies."""
        spans: List[Tuple[int, int]] = []
        for node in ast.walk(root):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                rendered = info.ctx.dotted_name(item.context_expr)
                if rendered is None and isinstance(
                    item.context_expr, ast.Call
                ):
                    rendered = info.ctx.dotted_name(
                        item.context_expr.func
                    )
                if rendered is not None and "lock" in rendered.lower():
                    end = getattr(node, "end_lineno", node.lineno)
                    spans.append((node.lineno, end or node.lineno))
                    break
        return spans

    def contested_targets(
        self,
    ) -> Dict[Tuple[str, ...], Tuple[Tuple[str, ...], List[WriteSite]]]:
        """Shared-state targets written from a racy context mix.

        A module-global target is contested as soon as **thread**
        context reaches any of its writers (the job pool is
        multi-threaded, so one thread-context writer already races with
        itself).  An instance-attribute target needs writers reachable
        from both **async** and **thread** (distinct instances per
        context never share memory with only one concurrent context).
        Shard workers run in separate processes and ``main`` is
        sequential — neither contributes contention.
        """
        by_target: Dict[Tuple[str, ...], List[WriteSite]] = {}
        for site in self.write_sites():
            by_target.setdefault(site.target, []).append(site)
        out: Dict[
            Tuple[str, ...], Tuple[Tuple[str, ...], List[WriteSite]]
        ] = {}
        for target, sites in by_target.items():
            combined: Set[str] = set()
            for site in sites:
                combined.update(self.contexts().get(site.function, set()))
            if target[0] == "module":
                contested = "thread" in combined
            else:
                contested = {"async", "thread"} <= combined
            if contested:
                ordered = tuple(c for c in CONTEXTS if c in combined)
                out[target] = (ordered, sites)
        return out

    # -- the report ------------------------------------------------------

    def findings(self) -> List[ContextFinding]:
        """Every T-family hazard, pragma-agnostic, with witness chains.

        This is the raw scan the report serialises; the registered
        rules re-derive the same sites so per-line pragmas and the
        baseline can suppress them individually.
        """
        out: List[ContextFinding] = []
        contexts = self.contexts()
        for ref in sorted(contexts):
            info = self.model.modules[ref[0]]
            if is_test_module(info.ctx.rel_path, info.name):
                continue
            reached = contexts[ref]
            fn = info.functions[ref[1]]
            if isinstance(fn.node, ast.AsyncFunctionDef):
                for site in self.direct_blocking_sites(ref):
                    out.append(self._finding(
                        "T1001", "async", ref, site.line, site.snippet,
                        detail=site.rendered,
                    ))
            elif "async" in reached:
                for site in self.blocking_sites(ref):
                    out.append(self._finding(
                        "T1002", "async", ref, site.line, site.snippet,
                        detail=site.rendered,
                    ))
            if "thread" in reached:
                for touch in self.loop_touches(ref):
                    out.append(self._finding(
                        "T1004", "thread", ref, touch.line, touch.snippet,
                        detail=touch.rendered,
                    ))
            concurrent = reached & {"async", "thread", "shard"}
            if concurrent and not is_atomic_write_module(info.name):
                context = next(c for c in CONTEXTS if c in concurrent)
                for write in self.raw_writes(ref):
                    out.append(self._finding(
                        "T1005", context, ref, write.line,
                        write.snippet, detail=write.rendered,
                    ))
        for target, (ctxs, sites) in sorted(
            self.contested_targets().items()
        ):
            for site in sites:
                if site.locked:
                    continue
                info = self.model.modules[site.function[0]]
                if is_test_module(info.ctx.rel_path, info.name):
                    continue
                finding = self._finding(
                    "T1003", ctxs[0], site.function, site.line,
                    site.snippet, detail="/".join(target[1:]),
                )
                finding.detail += f" [contexts: {', '.join(ctxs)}]"
                out.append(finding)
        return out

    def _finding(
        self,
        rule: str,
        context: str,
        ref: FunctionRef,
        line: int,
        snippet: str,
        detail: str = "",
    ) -> ContextFinding:
        info = self.model.modules[ref[0]]
        chain = self.chain(context, ref)
        chain.append(f"{info.ctx.rel_path}:{line} {snippet}")
        return ContextFinding(
            rule=rule,
            context=context,
            function=ref,
            site=f"{info.ctx.rel_path}:{line}",
            snippet=snippet,
            chain=chain,
            detail=detail,
        )

    def _suppressed(self, finding: ContextFinding) -> bool:
        """Whether a site-level pragma disables this finding — the
        report honors the same ``# reprolint: disable=`` markers the
        framework does."""
        from repro.lint.findings import Finding

        info = self.model.modules.get(finding.function[0])
        ctx = getattr(info, "ctx", None)
        if ctx is None:
            return False
        path, _, line = finding.site.rpartition(":")
        return ctx.is_suppressed(Finding(
            path=path, line=int(line), col=0,
            rule=finding.rule, message="",
        ))

    def report_json(self) -> Dict[str, Any]:
        """The full ``repro.lint/concurrency/v1`` document."""
        from repro.lint.cost import cost_for_model

        contexts = self.contexts()
        multi = {
            f"{ref[0]}:{ref[1]}": list(self.contexts_of(ref))
            for ref in sorted(contexts)
            if len(contexts[ref]) > 1
        }
        findings = [
            {
                "rule": finding.rule,
                "context": finding.context,
                "function": f"{finding.function[0]}:{finding.function[1]}",
                "site": finding.site,
                "snippet": finding.snippet,
                "detail": finding.detail,
                "chain": finding.chain,
            }
            for finding in self.findings()
            if not self._suppressed(finding)
        ]
        costs = cost_for_model(self.model).stage_costs()
        return {
            "schema": CONCURRENCY_SCHEMA,
            "modules": len(self.model.modules),
            "seeds": {
                context: [f"{ref[0]}:{ref[1]}" for ref in refs]
                for context, refs in self.seeds().items()
            },
            "functions": multi,
            "findings": findings,
            "costs": costs,
            "summary": {
                "functions": len(contexts),
                "multi_context": len(multi),
                "findings": len(findings),
                "contested_targets": len(self.contested_targets()),
            },
        }


def concurrency_for_model(model: ProgramModel) -> ContextAnalysis:
    """The memoized :class:`ContextAnalysis` of one program model."""
    cached = getattr(model, "_concurrency_analysis", None)
    if isinstance(cached, ContextAnalysis):
        return cached
    analysis = ContextAnalysis(model)
    setattr(model, "_concurrency_analysis", analysis)
    return analysis


def concurrency_for(project: Any) -> ContextAnalysis:
    """The analysis of one lint project (memoized via its model)."""
    return concurrency_for_model(project.program_model())
