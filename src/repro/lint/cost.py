"""Static loop-cost analysis over run-path functions.

The paper's measurement only reaches ISP scale (60M+ users) if every
stage stays linear in the record axes — users, flows, requests.  PR 8
found two accidentally quadratic loops by hand; this module makes that
audit continuous.  :class:`CostAnalysis` scans every function for:

* **loop nesting over record-scale iterables** — ``for`` / ``async
  for`` / comprehension clauses whose iterable names a record axis
  (``users``, ``flows``, ``requests``, ``rows``, ``chunks``... plus
  every :class:`repro.runtime.graph.ShardAxis` value discovered
  statically).  The maximum nesting depth is the function's asymptotic
  class: 0 → constant, 1 → linear, 2 → quadratic, 3+ → polynomial.
* **hazard sites** — the accidental-cost patterns the Q-family rules
  (:mod:`repro.lint.rules_cost`) report: ``x in <list>`` membership
  inside a loop (Q1101), ``str +=`` accumulation inside a loop
  (Q1102), two nested loops over the *same* record axis (Q1103),
  per-row dict/object allocation inside an ``iter_chunks`` consumer
  (Q1104), and ``x = x + ...`` sequence rebinds inside a loop (Q1105).

On top of the per-function scan, :meth:`CostAnalysis.stage_cost` folds
the run-reachable functions of one discovered stage into a **cost
footprint**: the stage's maximum nesting class, its hazard count, and
a structural digest over ``(function, nesting, hazard kinds)`` that
deliberately excludes line numbers — editing an unrelated line moves
nothing, while adding a nested record loop anywhere on the stage's run
path moves the digest.  The runtime embeds these footprints in
provenance manifests and digest-only in ledger records (exactly like
the PR-6 ``rng_lineage`` digests), and :mod:`repro.obs.diff`
classifies a moved cost digest as a *code* cause (``cost:<stage>``).
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.lint.dataflow import DataflowAnalysis, dataflow_for_model
from repro.lint.program import FunctionInfo, ModuleInfo, ProgramModel

FunctionRef = Tuple[str, str]

#: base vocabulary of record-scale iterable names; the analysis adds
#: every ``ShardAxis`` enum value it discovers in the tree
RECORD_AXES = frozenset((
    "users", "flows", "requests", "records", "rows", "chunks", "events",
    "ips", "addresses", "domains", "fqdns", "isps", "pairs", "trackers",
    "shards", "entries", "items", "samples",
))

#: nesting depth → asymptotic class label
NESTING_CLASSES = ("constant", "linear", "quadratic")


def nesting_class(depth: int) -> str:
    """The asymptotic class label of one record-loop nesting depth."""
    if depth < len(NESTING_CLASSES):
        return NESTING_CLASSES[depth]
    return "polynomial"


@dataclass
class HazardSite:
    """One accidental-cost pattern found inside a function body."""

    kind: str
    line: int
    snippet: str
    detail: str
    node: ast.AST = field(repr=False, compare=False, default=None)


@dataclass
class FunctionCost:
    """The static cost summary of one function."""

    function: FunctionRef
    nesting: int
    hazards: Tuple[HazardSite, ...]

    @property
    def nesting_class(self) -> str:
        return nesting_class(self.nesting)


class CostAnalysis:
    """Loop-cost scans and stage cost footprints over one model."""

    def __init__(self, model: ProgramModel) -> None:
        self.model = model
        self.df: DataflowAnalysis = dataflow_for_model(model)
        self._axes: Optional[frozenset] = None
        self._function_costs: Dict[FunctionRef, FunctionCost] = {}
        self._stage_costs: Optional[Dict[str, Dict[str, Any]]] = None

    # -- the record-axis vocabulary --------------------------------------

    def record_axes(self) -> frozenset:
        """Record-axis name stems: the base vocabulary plus every
        ``ShardAxis`` enum value found in the indexed modules."""
        if self._axes is not None:
            return self._axes
        axes: Set[str] = set(RECORD_AXES)
        axes.update(stem.rstrip("s") for stem in sorted(RECORD_AXES))
        for info in self.model.modules.values():
            cls = info.classes.get("ShardAxis")
            if cls is None:
                continue
            for stmt in cls.node.body:
                if not isinstance(stmt, ast.Assign):
                    continue
                value = stmt.value
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    axes.update(self._stems(value.value))
        self._axes = frozenset(axes)
        return self._axes

    @staticmethod
    def _stems(value: str) -> List[str]:
        parts = value.lower().split("_")
        stems = [value.lower(), parts[-1], parts[-1].rstrip("s")]
        return [stem for stem in stems if stem]

    def _axis_of(self, info: ModuleInfo, iterable: ast.expr) -> Optional[str]:
        """The record-axis stem one loop iterable ranges over, if any."""
        expr = iterable
        if isinstance(expr, ast.Call):
            expr = expr.func
        if isinstance(expr, ast.Subscript):
            expr = expr.value
        name: Optional[str] = None
        if isinstance(expr, ast.Name):
            name = expr.id
        elif isinstance(expr, ast.Attribute):
            name = expr.attr
        if name is None:
            return None
        if name == "iter_chunks":
            return "chunks"
        stem = name.lower()
        axes = self.record_axes()
        if stem in axes:
            return stem
        if stem.rstrip("s") in axes:
            return stem.rstrip("s")
        return None

    # -- per-function scan -----------------------------------------------

    def function_cost(self, ref: FunctionRef) -> FunctionCost:
        """The (memoized) cost summary of one model function."""
        cached = self._function_costs.get(ref)
        if cached is not None:
            return cached
        info = self.model.modules[ref[0]]
        fn = info.functions[ref[1]]
        scan = _FunctionScan(self, info, fn)
        scan.run()
        cost = FunctionCost(
            function=ref,
            nesting=scan.max_depth,
            hazards=tuple(scan.hazards),
        )
        self._function_costs[ref] = cost
        return cost

    # -- stage footprints ------------------------------------------------

    def stage_costs(self) -> Dict[str, Dict[str, Any]]:
        """Cost footprints of every discovered stage, by name."""
        if self._stage_costs is not None:
            return self._stage_costs
        out: Dict[str, Dict[str, Any]] = {}
        for decl in self.model.discover_stages():
            footprint = self.stage_cost(decl.name)
            if footprint is not None:
                out[decl.name] = footprint
        self._stage_costs = out
        return out

    def stage_cost(self, stage: str) -> Optional[Dict[str, Any]]:
        """The cost footprint of one discovered stage.

        Folds the cost of every function reachable from the stage's
        ``run`` seed.  The digest hashes ``function|nesting|hazards``
        entries (sorted, line numbers excluded): stable under pure
        line-shift edits, moved by any change to the loop structure or
        hazard set of the stage's run path.
        """
        run_seed: Optional[FunctionRef] = None
        for decl in self.model.discover_stages():
            if decl.name == stage:
                run_seed = decl.seeds.get("run")
                break
        return self.cost_footprint(run_seed)

    def cost_footprint(
        self, run_seed: Optional[FunctionRef]
    ) -> Optional[Dict[str, Any]]:
        """The cost footprint reachable from one ``run`` seed.

        The seed-based entry point: live stage graphs resolve their
        ``run`` callables to model refs and fold from here, without
        going through static stage discovery.
        """
        if run_seed is None or self.model.function(run_seed) is None:
            return None
        reach = self.df.reachable_from(run_seed)
        functions: Dict[str, Dict[str, Any]] = {}
        max_depth = 0
        hazard_count = 0
        entries: List[str] = []
        for ref in sorted(reach.functions):
            if self.model.function(ref) is None:
                continue
            cost = self.function_cost(ref)
            if cost.nesting == 0 and not cost.hazards:
                continue
            label = f"{ref[0]}:{ref[1]}"
            functions[label] = {
                "nesting": cost.nesting,
                "nesting_class": cost.nesting_class,
                "hazards": [
                    {
                        "kind": hazard.kind,
                        "line": hazard.line,
                        "detail": hazard.detail,
                    }
                    for hazard in cost.hazards
                ],
            }
            max_depth = max(max_depth, cost.nesting)
            hazard_count += len(cost.hazards)
            kinds = ",".join(sorted(
                f"{hazard.kind}#{index}"
                for index, hazard in enumerate(cost.hazards)
            ))
            entries.append(f"{label}|n={cost.nesting}|h={kinds}")
        digest = hashlib.blake2b(
            "\x1f".join(sorted(entries)).encode("utf-8"), digest_size=20
        ).hexdigest()
        return {
            "digest": digest,
            "nesting": max_depth,
            "nesting_class": nesting_class(max_depth),
            "hazards": hazard_count,
            "functions": functions,
        }


class _FunctionScan:
    """One recursive walk of a function body, tracking the record-loop
    stack so nesting depth and loop-relative hazards fall out."""

    def __init__(
        self, analysis: CostAnalysis, info: ModuleInfo, fn: FunctionInfo
    ) -> None:
        self.analysis = analysis
        self.info = info
        self.fn = fn
        self.max_depth = 0
        self.hazards: List[HazardSite] = []
        self._axis_stack: List[Optional[str]] = []
        self._chunk_depth = 0
        self._str_locals = self._seeded_strings()
        self._list_locals = self._seeded_lists()
        self._callee_at = analysis.df._callee_at(fn)

    # a name is "str-seeded" when any binding in the function gives it a
    # string value; "list-seeded" likewise for list values
    def _seeded_strings(self) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign):
                value = node.value
                if isinstance(value, ast.JoinedStr) or (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ) or (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "str"
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names

    def _seeded_lists(self) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign):
                value = node.value
                if isinstance(value, (ast.List, ast.ListComp)) or (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in ("list", "sorted")
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names

    def run(self) -> None:
        for child in ast.iter_child_nodes(self.fn.node):
            self._visit(child)

    # -- classification helpers ------------------------------------------

    def _is_list_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.ListComp)):
            return True
        if isinstance(node, ast.Name):
            if node.id in self._list_locals:
                return True
            decl = self.info.constant_nodes.get(node.id)
            if decl is not None and isinstance(
                getattr(decl, "value", None), (ast.List, ast.ListComp)
            ):
                return node.id not in self.analysis.model.local_names(
                    self.fn.node
                )
        return False

    def _hazard(self, kind: str, node: ast.AST, detail: str) -> None:
        self.hazards.append(HazardSite(
            kind=kind,
            line=node.lineno,
            snippet=self.analysis.df._snippet(self.info, node.lineno),
            detail=detail,
            node=node,
        ))

    @property
    def _in_loop(self) -> bool:
        return bool(self._axis_stack)

    @property
    def _record_depth(self) -> int:
        return sum(1 for axis in self._axis_stack if axis is not None)

    # -- the walk --------------------------------------------------------

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs cost nothing until called
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._visit_loop(node)
            return
        if isinstance(node, ast.While):
            self._enter_loop(None, is_chunk=False)
            for child in ast.iter_child_nodes(node):
                self._visit(child)
            self._exit_loop(is_chunk=False)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            self._visit_comprehension(node)
            return
        if isinstance(node, ast.Compare) and self._in_loop:
            self._check_membership(node)
        if isinstance(node, ast.AugAssign) and self._in_loop:
            self._check_str_accum(node)
        if isinstance(node, ast.Assign) and self._in_loop:
            self._check_seq_rebind(node)
        if self._chunk_depth and self._record_depth >= 2:
            self._check_per_row_alloc(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_loop(self, node: ast.AST) -> None:
        axis = self.analysis._axis_of(self.info, node.iter)
        is_chunk = self._iterates_chunks(node.iter)
        if axis is not None and axis in (
            a for a in self._axis_stack if a is not None
        ):
            self._hazard(
                "same-axis-nesting", node,
                f"nested loops both range over '{axis}'",
            )
        self._enter_loop(axis, is_chunk=is_chunk)
        self._visit(node.iter)
        for child in node.body + node.orelse:
            self._visit(child)
        self._exit_loop(is_chunk=is_chunk)

    def _visit_comprehension(self, node: ast.AST) -> None:
        entered: List[Tuple[Optional[str], bool]] = []
        for generator in node.generators:
            axis = self.analysis._axis_of(self.info, generator.iter)
            is_chunk = self._iterates_chunks(generator.iter)
            if axis is not None and axis in (
                a for a in self._axis_stack if a is not None
            ):
                self._hazard(
                    "same-axis-nesting", node,
                    f"nested loops both range over '{axis}'",
                )
            self._enter_loop(axis, is_chunk=is_chunk)
            entered.append((axis, is_chunk))
            self._visit(generator.iter)
            for condition in generator.ifs:
                self._visit(condition)
        elements = [
            child
            for child in ast.iter_child_nodes(node)
            if not isinstance(child, ast.comprehension)
        ]
        for element in elements:
            self._visit(element)
        for axis, is_chunk in reversed(entered):
            self._exit_loop(is_chunk=is_chunk)

    def _enter_loop(self, axis: Optional[str], is_chunk: bool) -> None:
        self._axis_stack.append(axis)
        if is_chunk:
            self._chunk_depth += 1
        self.max_depth = max(self.max_depth, self._record_depth)

    def _exit_loop(self, is_chunk: bool) -> None:
        self._axis_stack.pop()
        if is_chunk:
            self._chunk_depth -= 1

    @staticmethod
    def _iterates_chunks(iterable: ast.expr) -> bool:
        expr = iterable
        if isinstance(expr, ast.Call):
            expr = expr.func
        name = None
        if isinstance(expr, ast.Name):
            name = expr.id
        elif isinstance(expr, ast.Attribute):
            name = expr.attr
        return name == "iter_chunks"

    # -- hazard checks ---------------------------------------------------

    def _check_membership(self, node: ast.Compare) -> None:
        for op, comparator in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.In, ast.NotIn)):
                continue
            if self._is_list_expr(comparator):
                rendered = (
                    comparator.id
                    if isinstance(comparator, ast.Name)
                    else "a list literal"
                )
                self._hazard(
                    "list-membership", node,
                    f"'in' against list {rendered} inside a loop",
                )

    def _check_str_accum(self, node: ast.AugAssign) -> None:
        if not isinstance(node.op, ast.Add):
            return
        target = node.target
        if isinstance(target, ast.Name) and target.id in self._str_locals:
            self._hazard(
                "str-accum", node,
                f"'{target.id} +=' builds a string inside a loop",
            )

    def _check_seq_rebind(self, node: ast.Assign) -> None:
        value = node.value
        if not (
            isinstance(value, ast.BinOp) and isinstance(value.op, ast.Add)
        ):
            return
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            for operand in (value.left, value.right):
                if isinstance(operand, ast.Name) and (
                    operand.id == target.id
                ):
                    self._hazard(
                        "seq-rebind", node,
                        f"'{target.id} = {target.id} + ...' rebinds a "
                        "sequence inside a loop",
                    )
                    return

    def _check_per_row_alloc(self, node: ast.AST) -> None:
        if isinstance(node, (ast.Dict, ast.DictComp)):
            self._hazard(
                "per-row-alloc", node,
                "dict allocated per row inside an iter_chunks consumer",
            )
            return
        if isinstance(node, ast.Call):
            callee = self._callee_at.get((node.lineno, node.col_offset))
            if callee is not None and callee.kind == "class":
                self._hazard(
                    "per-row-alloc", node,
                    f"{callee.qualname} instance allocated per row "
                    "inside an iter_chunks consumer",
                )


def cost_for_model(model: ProgramModel) -> CostAnalysis:
    """The memoized :class:`CostAnalysis` of one program model."""
    cached = getattr(model, "_cost_analysis", None)
    if isinstance(cached, CostAnalysis):
        return cached
    analysis = CostAnalysis(model)
    setattr(model, "_cost_analysis", analysis)
    return analysis


def cost_for(project: Any) -> CostAnalysis:
    """The analysis of one lint project (memoized via its model)."""
    return cost_for_model(project.program_model())
