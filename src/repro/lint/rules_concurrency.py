"""Concurrency-context rules (T1001–T1005).

Built on :mod:`repro.lint.concurrency`: every function is classified by
the execution contexts that reach it (event loop, job thread, shard
worker, main), and the T rules flag code that is only a hazard because
of *where* it runs:

* **T1001** — blocking call directly inside an ``async def`` body.
* **T1002** — blocking call transitively reachable from async context
  along sync call edges, without an executor offload on the way.
* **T1003** — module-global / instance-attribute state written from a
  racy context mix without a lock witness on the write.
* **T1004** — event-loop-only API (``call_soon``, ``create_task``...)
  touched from thread context instead of ``call_soon_threadsafe``.
* **T1005** — write-mode file I/O in a concurrent context outside the
  sanctioned atomic-write helpers (``.tmp.{pid}.{thread_ident}`` +
  ``os.replace``).

Every finding carries the ``file:line`` witness chain from a context
seed down to the hazard site, so the report reads as an execution
trace, not an assertion.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Iterable, List

from repro.lint.concurrency import ContextFinding, concurrency_for
from repro.lint.framework import Finding, ProjectContext, Rule, register

#: cap on rendered witness hops per message (keep findings one-line-ish)
_MESSAGE_HOPS = 6


def _witness(chain: List[str]) -> str:
    hops = chain
    if len(hops) > _MESSAGE_HOPS:
        hops = hops[:2] + ["..."] + hops[-(_MESSAGE_HOPS - 3):]
    return " -> ".join(hops)


class _ContextRule(Rule):
    """Shared driver: surface the analysis findings of one rule code."""

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        analysis = concurrency_for(project)
        for entry in analysis.findings():
            if entry.rule != self.code:
                continue
            ctx = project.context_for_module(entry.function[0])
            if ctx is None:
                continue
            node = SimpleNamespace(
                lineno=int(entry.site.rsplit(":", 1)[1]), col_offset=0
            )
            yield ctx.finding(self, node, self._message(entry))

    def _message(self, entry: ContextFinding) -> str:
        # Subclasses override; the base rendering still reads sensibly.
        return f"{entry.detail} [witness: {_witness(entry.chain)}]"


@register
class AsyncBlockingCallRule(_ContextRule):
    """T1001 — blocking call directly inside an ``async def``."""

    code = "T1001"
    name = "async-blocking-call"
    description = (
        "blocking call (time.sleep, raw open, run_study, blocking "
        "socket helpers) directly inside an async def body"
    )

    def _message(self, entry: ContextFinding) -> str:
        return (
            f"blocking call '{entry.detail}' inside async def "
            f"{entry.function[1]}: the event loop stalls for its "
            "duration; offload via loop.run_in_executor"
        )


@register
class AsyncBlockingReachableRule(_ContextRule):
    """T1002 — blocking call reachable from async context."""

    code = "T1002"
    name = "async-blocking-reachable"
    description = (
        "blocking call transitively reachable from an async def along "
        "sync call edges, without an executor offload on the path"
    )

    def _message(self, entry: ContextFinding) -> str:
        return (
            f"blocking call '{entry.detail}' in {entry.function[1]} is "
            "reachable from the event loop without executor offload "
            f"[witness: {_witness(entry.chain)}]"
        )


@register
class CrossContextWriteRule(_ContextRule):
    """T1003 — cross-context shared-state write without a lock."""

    code = "T1003"
    name = "cross-context-unlocked-write"
    description = (
        "module-level or instance-attribute state written from a racy "
        "context mix (job threads, event loop) with no lock witness on "
        "the write"
    )

    def _message(self, entry: ContextFinding) -> str:
        return (
            f"shared state {entry.detail} is written in "
            f"{entry.function[1]} without a lock witness "
            f"[witness: {_witness(entry.chain)}]"
        )


@register
class ThreadLoopTouchRule(_ContextRule):
    """T1004 — event-loop state touched from a thread."""

    code = "T1004"
    name = "thread-loop-unsafe"
    description = (
        "event-loop-only API (call_soon, call_later, call_at, "
        "create_task, ensure_future) called from thread context; "
        "threads must hop through loop.call_soon_threadsafe"
    )

    def _message(self, entry: ContextFinding) -> str:
        return (
            f"event-loop API '{entry.detail}' called from thread "
            f"context in {entry.function[1]}; use "
            "loop.call_soon_threadsafe "
            f"[witness: {_witness(entry.chain)}]"
        )


@register
class NonAtomicCacheWriteRule(_ContextRule):
    """T1005 — concurrent file write bypassing the atomic helpers."""

    code = "T1005"
    name = "cache-write-nonatomic"
    description = (
        "write-mode file I/O reachable from a concurrent context "
        "(event loop, job thread, shard worker) outside the sanctioned "
        "atomic-write helpers (.tmp.{pid}.{thread_ident} + os.replace)"
    )

    def _message(self, entry: ContextFinding) -> str:
        return (
            f"raw file write ('{entry.detail}') in {entry.function[1]} "
            f"runs in {entry.context} context; route it through the "
            "atomic write helpers (repro.obs.persist / the artifact "
            f"cache) [witness: {_witness(entry.chain)}]"
        )
