"""P-rules: shard purity.

A stage's ``run`` executes once per shard, possibly in worker
subprocesses, possibly not at all (cache hit).  Its output must
therefore be a pure function of ``(world, products, payload)``: any
module-level state it writes would differ between worker layouts, and
any ambient read (environment, wall clock) would differ between hosts —
both break the warm-run-equals-cold-run guarantee the paper's tables
rest on.

The rules walk the program model's call graph from every discovered
stage's ``run`` seed, so purity is enforced across module boundaries —
a helper three calls deep in ``core/`` is held to the same standard as
the stage body itself:

* **P501** — ``global`` statements (module-global rebinding);
* **P502** — mutation of module-level containers (mutator method
  calls, subscript or augmented assignment on module-level names);
* **P503** — environment / wall-clock reads (``os.environ``,
  ``time.time``, ``datetime.now``, ...) anywhere on a run path, even in
  packages the D103 per-file rule does not patrol.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.framework import ProjectContext, Rule, register
from repro.lint.program import FunctionInfo, FunctionRef, ProgramModel
from repro.lint.rules_determinism import WALL_CLOCK_SUFFIXES

#: method names that mutate the container they are called on
MUTATOR_METHODS = {
    "append", "add", "update", "extend", "setdefault", "pop", "popitem",
    "clear", "remove", "discard", "insert", "sort", "reverse",
}


def _run_reachable(
    model: ProgramModel,
) -> Dict[FunctionRef, List[str]]:
    """Every function reachable from any stage's ``run`` seed, mapped to
    the sorted stage names that reach it."""
    reached: Dict[FunctionRef, Set[str]] = {}
    for decl in model.discover_stages():
        run_seed = decl.seeds.get("run")
        if run_seed is None:
            continue
        for ref in model.reachable([run_seed]).functions:
            reached.setdefault(ref, set()).add(decl.name)
    return {ref: sorted(stages) for ref, stages in reached.items()}


class _RunPathRule(Rule):
    """Shared driver: visit every function on a run path exactly once."""

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        model = project.program_model()
        for ref, stages in sorted(_run_reachable(model).items()):
            fn = model.function(ref)
            assert fn is not None
            info = model.modules[ref[0]]
            ctx = project.context_for_module(ref[0])
            if ctx is None:
                continue
            via = ", ".join(stages)
            for node, message in self._check_function(model, info, fn):
                yield ctx.finding(
                    self,
                    node,
                    f"{message} [in {fn.qualname}, on the run path of: "
                    f"{via}]",
                )

    def _check_function(
        self, model: ProgramModel, info, fn: FunctionInfo
    ) -> Iterator[Tuple[ast.AST, str]]:
        return iter(())


@register
class RunGlobalAssignRule(_RunPathRule):
    """P501 — no ``global`` rebinding on a shard run path."""

    code = "P501"
    name = "run-global-assign"
    description = (
        "global statement in code reachable from a stage's run: shard "
        "output must not depend on module state"
    )

    def _check_function(
        self, model: ProgramModel, info, fn: FunctionInfo
    ) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                names = ", ".join(node.names)
                yield node, (
                    f"'global {names}' rebinds module state from shard "
                    "run code; pass state through the payload or return "
                    "value"
                )


@register
class RunModuleMutationRule(_RunPathRule):
    """P502 — no mutation of module-level containers on a run path."""

    code = "P502"
    name = "run-module-mutation"
    description = (
        "mutation of a module-level container (mutator call, subscript "
        "or augmented assignment) in code reachable from a stage's run"
    )

    def _check_function(
        self, model: ProgramModel, info, fn: FunctionInfo
    ) -> Iterator[Tuple[ast.AST, str]]:
        module_level = set(info.constant_nodes)
        local = model.local_names(fn.node)

        def is_module_name(expr: ast.expr) -> bool:
            return (
                isinstance(expr, ast.Name)
                and expr.id in module_level
                and expr.id not in local
            )

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                    and is_module_name(func.value)
                ):
                    yield node, (
                        f"{func.value.id}.{func.attr}(...) mutates a "
                        "module-level container from shard run code"
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and is_module_name(
                        target.value
                    ):
                        yield node, (
                            f"subscript assignment into module-level "
                            f"'{target.value.id}' from shard run code"
                        )
                    elif isinstance(
                        node, ast.AugAssign
                    ) and is_module_name(target):
                        yield node, (
                            f"augmented assignment to module-level "
                            f"'{target.id}' from shard run code"
                        )


@register
class RunAmbientReadRule(_RunPathRule):
    """P503 — no environment or wall-clock reads on a run path."""

    code = "P503"
    name = "run-ambient-read"
    description = (
        "os.environ / time.* / datetime.now read in code reachable "
        "from a stage's run: shard output must not depend on the host"
    )

    def _check_function(
        self, model: ProgramModel, info, fn: FunctionInfo
    ) -> Iterator[Tuple[ast.AST, str]]:
        ctx = info.ctx
        reported: Set[Tuple[int, int]] = set()
        for node in ast.walk(fn.node):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            name = ctx.dotted_name(node)
            if name is None:
                continue
            parts = tuple(name.split("."))
            if len(parts) < 2 or parts[-2:] not in WALL_CLOCK_SUFFIXES:
                continue
            key = (node.lineno, node.col_offset)
            if key in reported:
                continue
            reported.add(key)
            yield node, (
                f"{name} reads ambient host state from shard run code; "
                "thread it through config or the world instead"
            )
