"""The :class:`Finding` record emitted by every reprolint rule.

A finding is a plain value object: rules produce them, the framework
filters them through pragmas and the baseline, and reporters render
them.  The ``snippet`` field (the stripped source line) doubles as the
line-number-independent fingerprint used by the baseline, so findings
survive unrelated edits above them in the file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    snippet: str = field(default="", compare=False)

    def fingerprint(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across pure line-number shifts."""
        return (self.rule, self.path, self.snippet)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
        }
