"""Whole-program analysis: module index, import graph, and call graph.

PR 1's rules see one file at a time; the properties this module serves
cannot be checked that way.  Whether a stage's cache salt covers every
helper it executes, whether shard ``run`` code mutates module state,
whether a metric name matches the catalog — all require the *program*
view: which module is which file, who imports whom, and who calls whom.

:class:`ProgramModel` provides that view.  It is built once per lint run
(or once per process for the runtime's footprint salts) from the same
:class:`~repro.lint.framework.FileContext` objects the per-file rules
see, and offers:

* a **module index** — dotted module name → :class:`ModuleInfo`, with a
  per-module symbol table (imports resolved through aliases and
  relative levels, module-level functions/classes/constants);
* an **import graph** — module-level and total (function-level
  included) resolved import edges, with cycle-safe transitive closure;
* a **conservative call graph** — every :class:`ast.Call` in every
  function body resolved to a :class:`Callee`: a function or method in
  the analyzed program, a class instantiation, a bare module, a
  ``repro.*`` name the analysis cannot index (``missing``), an external
  (stdlib) name, or ``unknown`` for dynamic dispatch.  Resolution
  understands ``module.attr`` chains, ``from x import y as z``,
  ``self.method()`` (including resolvable base classes), and method
  calls on locally-constructed or annotation-typed objects.  It never
  guesses: what cannot be proven degrades to ``unknown``, never to a
  wrong edge.

On top of the call graph sit :meth:`ProgramModel.reachable` (BFS with
parent pointers, cycle-safe) and :meth:`ProgramModel.footprint` — the
per-stage *salt footprint* shared verbatim by the C4xx lint rules and
by :mod:`repro.runtime.footprint`, so the invariant the linter checks
is literally the quantity the runtime folds into its cache keys.
"""

from __future__ import annotations

import ast
import builtins
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.framework import (
    FileContext,
    ProjectContext,
    iter_python_files,
    module_name_for,
)

#: pragma marking an import line whose target is deliberately excluded
#: from salt footprints (C402 then demands a manual version bump)
_FOOTPRINT_EXEMPT_RE = re.compile(r"#\s*reprolint:\s*footprint-exempt\b")

#: digest width for footprint salts (matches the runtime cache's)
_DIGEST_BYTES = 20


def _digest(*parts: str) -> str:
    h = hashlib.blake2b(digest_size=_DIGEST_BYTES)
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x1f")
    return h.hexdigest()


def node_source(ctx: FileContext, node: ast.AST) -> str:
    """The source text of ``node``, sliced from the file's line table.

    Equivalent to :func:`ast.get_source_segment` for our nodes but
    O(span) instead of O(file) — ``get_source_segment`` re-splits the
    whole file per call, which dominates model-build time on a real
    tree.  Decorator lines are included (a decorator change must change
    a salted definition).
    """
    start = getattr(node, "lineno", None)
    end = getattr(node, "end_lineno", None)
    if start is None or end is None:
        return ""
    col = node.col_offset
    for decorator in getattr(node, "decorator_list", ()):
        if decorator.lineno < start:
            start = decorator.lineno
            col = 0
    lines = ctx.lines[start - 1 : end]
    if not lines:
        return ""
    lines = list(lines)
    lines[-1] = lines[-1][: node.end_col_offset]
    lines[0] = lines[0][col:]
    return "\n".join(lines)


def resolve_relative_import(
    module: str, is_package: bool, level: int, target: Optional[str]
) -> Optional[str]:
    """Absolute dotted module for a (possibly relative) ImportFrom.

    ``level == 0`` is already absolute.  For relative imports the base
    is the importing module's package: a plain module drops its own
    name first, a package (``__init__.py``) counts as its own base.
    Over-deep relativity resolves to ``None``.
    """
    if level == 0:
        return target
    base = module.split(".")
    if is_package:
        base.append("__init__")
    if level > len(base):
        return None
    prefix = base[: len(base) - level]
    if target:
        prefix.extend(target.split("."))
    return ".".join(prefix) if prefix else None


# ---------------------------------------------------------------------------
# model records
# ---------------------------------------------------------------------------

#: a function in the analyzed program, addressed as (module, qualname)
FunctionRef = Tuple[str, str]


@dataclass(frozen=True)
class Callee:
    """The resolution of one call site.

    ``kind`` is one of ``function`` / ``class`` / ``module`` (resolved
    only to module granularity) / ``missing`` (a ``repro.*`` name whose
    module is not in the analyzed program) / ``external`` (stdlib or
    third-party) / ``unknown`` (dynamic dispatch the analysis cannot
    follow).
    """

    kind: str
    module: str = ""
    qualname: str = ""
    rendered: str = ""


@dataclass(frozen=True)
class CallSite:
    """One :class:`ast.Call` with its resolved callee."""

    line: int
    col: int
    callee: Callee


@dataclass
class FunctionInfo:
    """One function or method body in the analyzed program."""

    module: str
    qualname: str
    node: ast.AST
    source: str
    calls: List[CallSite] = field(default_factory=list)
    #: module-level names of the own module read (not called) by the body
    loads: Set[str] = field(default_factory=set)


@dataclass
class ClassInfo:
    """One class defined at module level."""

    module: str
    name: str
    node: ast.ClassDef
    source: str
    bases: Tuple[str, ...]
    #: method name -> qualname in the module's function table
    methods: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class Symbol:
    """A name bound at module scope (by import or definition)."""

    kind: str  # function | class | module | constant | missing | external
    module: str = ""
    qualname: str = ""
    value: str = ""


@dataclass
class ModuleInfo:
    """Everything the model knows about one analyzed module."""

    name: str
    ctx: FileContext
    is_package: bool
    symbols: Dict[str, Symbol] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level string constants, e.g. ``NAME = "literal"``
    constants: Dict[str, str] = field(default_factory=dict)
    #: module-level assignment statements by target name (for salting
    #: constants that stage code reads by name)
    constant_nodes: Dict[str, ast.stmt] = field(default_factory=dict)
    #: resolved imports at module level only (cycle rule granularity)
    imports_toplevel: Set[str] = field(default_factory=set)
    #: resolved imports anywhere in the file (footprint granularity)
    imports_all: Set[str] = field(default_factory=set)
    #: ``repro.*`` import targets that resolve to no analyzed module
    missing_imports: Set[str] = field(default_factory=set)
    #: absolute module names excluded from footprints by pragma
    exempt_imports: Set[str] = field(default_factory=set)

    def source_digest(self) -> str:
        return _digest(self.ctx.source)


@dataclass
class Reachability:
    """The closure of the call graph from a set of seed functions."""

    functions: List[FunctionRef] = field(default_factory=list)
    classes: List[Tuple[str, str]] = field(default_factory=list)
    #: modules containing any reached function/class
    modules: Set[str] = field(default_factory=set)
    #: modules reached only at module granularity (bare module callees)
    module_grain: Set[str] = field(default_factory=set)
    unknown: List[Tuple[FunctionRef, CallSite]] = field(default_factory=list)
    missing: List[Tuple[FunctionRef, CallSite]] = field(default_factory=list)
    #: BFS tree: function -> the function that first reached it
    parents: Dict[FunctionRef, Optional[FunctionRef]] = field(
        default_factory=dict
    )

    def path_to(self, ref: FunctionRef, limit: int = 5) -> List[str]:
        """The seed→ref call chain (qualnames), capped at ``limit`` hops."""
        chain: List[str] = []
        cursor: Optional[FunctionRef] = ref
        while cursor is not None and len(chain) < limit:
            chain.append(cursor[1])
            cursor = self.parents.get(cursor)
        return list(reversed(chain))


@dataclass(frozen=True)
class Footprint:
    """The modules and definitions one stage's cache salt must cover."""

    #: modules the seed functions are defined in (covered per-function)
    stage_modules: Tuple[str, ...]
    #: external modules folded at whole-module granularity (sorted)
    modules: Tuple[str, ...]
    #: reachable modules shielded from the salt by a footprint-exempt
    #: pragma (C402 requires a version bump when non-empty)
    exempted: Tuple[str, ...]
    #: ``repro.*`` names the salt cannot cover (C401 findings)
    missing: Tuple[str, ...]
    #: blake2b over every folded definition and module source
    salt: str


@dataclass
class StageDecl:
    """One statically-discovered ``StageSpec(...)`` construction."""

    name: str
    module: str
    node: ast.Call
    version: str
    version_explicit: bool
    #: resolved plan/run/merge seeds, keyed by keyword
    seeds: Dict[str, FunctionRef] = field(default_factory=dict)
    #: keywords whose callable could not be resolved statically
    unresolved: List[Tuple[str, str]] = field(default_factory=list)


# ---------------------------------------------------------------------------
# the model
# ---------------------------------------------------------------------------

class ProgramModel:
    """Module index + import graph + call graph over an analyzed tree."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules

    # -- construction ----------------------------------------------------
    @classmethod
    def from_project(cls, project: ProjectContext) -> "ProgramModel":
        contexts = [
            ctx for ctx in project.files.values() if ctx.tree is not None
        ]
        return cls.from_contexts(contexts)

    @classmethod
    def from_paths(
        cls, paths: Sequence[Path], root: Optional[Path] = None
    ) -> "ProgramModel":
        """Build a model straight from the filesystem (runtime entry)."""
        root = (root or Path.cwd()).resolve()
        contexts: List[FileContext] = []
        for path in iter_python_files(list(paths)):
            resolved = path.resolve()
            try:
                rel = resolved.relative_to(root).as_posix()
            except ValueError:
                rel = path.as_posix()
            ctx = FileContext(resolved, rel, resolved.read_text(encoding="utf-8"))
            if ctx.tree is not None:
                contexts.append(ctx)
        return cls.from_contexts(contexts)

    @classmethod
    def from_contexts(cls, contexts: Sequence[FileContext]) -> "ProgramModel":
        modules: Dict[str, ModuleInfo] = {}
        for ctx in sorted(contexts, key=lambda c: c.rel_path):
            info = ModuleInfo(
                name=ctx.module,
                ctx=ctx,
                is_package=ctx.path.name == "__init__.py",
            )
            # Last write wins on duplicate module names (shadowed trees);
            # sorted iteration keeps the choice deterministic.
            modules[info.name] = info
        model = cls(modules)
        for name in sorted(modules):
            model._index_module(modules[name])
        for name in sorted(modules):
            model._link_imports(modules[name])
        for name in sorted(modules):
            model._analyze_functions(modules[name])
        return model

    # -- pass 1: per-module definitions ----------------------------------
    def _index_module(self, info: ModuleInfo) -> None:
        tree = info.ctx.tree
        assert tree is not None
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_function(info, stmt, qualname=stmt.name)
                info.symbols[stmt.name] = Symbol(
                    "function", module=info.name, qualname=stmt.name
                )
            elif isinstance(stmt, ast.ClassDef):
                self._register_class(info, stmt)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                for target in self._assign_targets(stmt):
                    info.constant_nodes[target] = stmt
                    value = getattr(stmt, "value", None)
                    if isinstance(value, ast.Constant) and isinstance(
                        value.value, str
                    ):
                        info.constants[target] = value.value
                        info.symbols[target] = Symbol(
                            "constant", module=info.name, value=value.value
                        )

    @staticmethod
    def _assign_targets(stmt: ast.stmt) -> List[str]:
        targets: List[str] = []
        if isinstance(stmt, ast.Assign):
            nodes: List[ast.expr] = list(stmt.targets)
        else:
            nodes = [stmt.target]  # type: ignore[attr-defined]
        for node in nodes:
            if isinstance(node, ast.Name):
                targets.append(node.id)
            elif isinstance(node, ast.Tuple):
                targets.extend(
                    element.id
                    for element in node.elts
                    if isinstance(element, ast.Name)
                )
        return targets

    def _register_function(
        self, info: ModuleInfo, node: ast.AST, qualname: str
    ) -> None:
        source = node_source(info.ctx, node)
        info.functions[qualname] = FunctionInfo(
            module=info.name, qualname=qualname, node=node, source=source
        )

    def _register_class(self, info: ModuleInfo, node: ast.ClassDef) -> None:
        source = node_source(info.ctx, node)
        bases = tuple(
            rendered
            for rendered in (self._render(base) for base in node.bases)
            if rendered is not None
        )
        cls_info = ClassInfo(
            module=info.name,
            name=node.name,
            node=node,
            source=source,
            bases=bases,
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{node.name}.{stmt.name}"
                self._register_function(info, stmt, qualname=qualname)
                cls_info.methods[stmt.name] = qualname
        info.classes[node.name] = cls_info
        info.symbols[node.name] = Symbol(
            "class", module=info.name, qualname=node.name
        )

    @staticmethod
    def _render(node: ast.expr) -> Optional[str]:
        """Render an ``a.b.c`` attribute chain as a dotted string."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    # -- pass 2: import edges and imported symbols -----------------------
    def _link_imports(self, info: ModuleInfo) -> None:
        tree = info.ctx.tree
        assert tree is not None
        toplevel_nodes = set(map(id, tree.body))
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                self._link_plain_import(info, node, id(node) in toplevel_nodes)
            elif isinstance(node, ast.ImportFrom):
                self._link_from_import(info, node, id(node) in toplevel_nodes)

    def _record_edge(self, info: ModuleInfo, target: str, toplevel: bool) -> None:
        if target == info.name:
            return
        info.imports_all.add(target)
        if toplevel:
            info.imports_toplevel.add(target)

    def _import_exempt(self, info: ModuleInfo, node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        if 0 < line <= len(info.ctx.lines):
            return bool(_FOOTPRINT_EXEMPT_RE.search(info.ctx.lines[line - 1]))
        return False

    def _link_plain_import(
        self, info: ModuleInfo, node: ast.Import, toplevel: bool
    ) -> None:
        exempt = self._import_exempt(info, node)
        for alias in node.names:
            name = alias.name
            if name in self.modules:
                self._record_edge(info, name, toplevel)
                if exempt:
                    info.exempt_imports.add(name)
                local = alias.asname or name.split(".")[0]
                bound = name if alias.asname else name.split(".")[0]
                if bound in self.modules:
                    info.symbols.setdefault(
                        local, Symbol("module", module=bound)
                    )
            elif name.split(".")[0] == "repro":
                info.missing_imports.add(name)
            else:
                local = alias.asname or name.split(".")[0]
                info.symbols.setdefault(local, Symbol("external", value=name))

    def _link_from_import(
        self, info: ModuleInfo, node: ast.ImportFrom, toplevel: bool
    ) -> None:
        target = resolve_relative_import(
            info.name, info.is_package, node.level, node.module
        )
        exempt = self._import_exempt(info, node)
        if target is None:
            return
        target_indexed = target in self.modules
        if target_indexed:
            self._record_edge(info, target, toplevel)
            if exempt:
                info.exempt_imports.add(target)
        for alias in node.names:
            local = alias.asname or alias.name
            submodule = f"{target}.{alias.name}"
            if submodule in self.modules:
                self._record_edge(info, submodule, toplevel)
                if exempt:
                    info.exempt_imports.add(submodule)
                info.symbols.setdefault(local, Symbol("module", module=submodule))
            elif target_indexed:
                origin = self.modules[target]
                symbol = origin.symbols.get(alias.name)
                if symbol is not None and symbol.kind in (
                    "function", "class", "constant",
                ):
                    info.symbols.setdefault(local, symbol)
                else:
                    # Re-exported or dynamically-defined name: the module
                    # edge above still covers it for footprints.
                    info.symbols.setdefault(
                        local, Symbol("module", module=target)
                    )
            elif target.split(".")[0] == "repro":
                info.missing_imports.add(target)
            else:
                info.symbols.setdefault(
                    local, Symbol("external", value=f"{target}.{alias.name}")
                )

    # -- pass 3: call extraction ----------------------------------------
    def _analyze_functions(self, info: ModuleInfo) -> None:
        for qualname in sorted(info.functions):
            fn = info.functions[qualname]
            class_name = qualname.split(".")[0] if "." in qualname else None
            self._analyze_function(info, fn, class_name)

    def _analyze_function(
        self, info: ModuleInfo, fn: FunctionInfo, class_name: Optional[str]
    ) -> None:
        node = fn.node
        local_names = self.local_names(node)
        local_types = self._local_types(info, node, local_names)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                callee = self._resolve_call(
                    info, sub, class_name, local_names, local_types
                )
                fn.calls.append(
                    CallSite(
                        line=sub.lineno, col=sub.col_offset, callee=callee
                    )
                )
            elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                if sub.id not in local_names and sub.id in info.constant_nodes:
                    fn.loads.add(sub.id)

    @staticmethod
    def local_names(node: ast.AST) -> Set[str]:
        """Every name bound inside the function (params, assignments,
        loop/with/except targets, comprehensions, local imports/defs)."""
        bound: Set[str] = set()
        args = getattr(node, "args", None)
        if args is not None:
            for group in (
                args.posonlyargs, args.args, args.kwonlyargs,
            ):
                bound.update(arg.arg for arg in group)
            for vararg in (args.vararg, args.kwarg):
                if vararg is not None:
                    bound.add(vararg.arg)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                bound.add(sub.id)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if sub is not node:
                    bound.add(sub.name)
            elif isinstance(sub, ast.ExceptHandler) and sub.name:
                bound.add(sub.name)
            elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                for alias in sub.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
        return bound

    def _local_types(
        self, info: ModuleInfo, node: ast.AST, local_names: Set[str]
    ) -> Dict[str, Tuple[str, str]]:
        """Conservative local-variable type bindings: parameters and
        variables annotated with a resolvable class, or assigned from a
        direct constructor call / a call whose return annotation names a
        resolvable class."""
        types: Dict[str, Tuple[str, str]] = {}
        args = getattr(node, "args", None)
        if args is not None:
            for arg in list(args.posonlyargs) + list(args.args) + list(
                args.kwonlyargs
            ):
                if arg.annotation is not None:
                    resolved = self._resolve_type(info, arg.annotation)
                    if resolved is not None:
                        types[arg.arg] = resolved
        for sub in ast.walk(node):
            if isinstance(sub, ast.AnnAssign) and isinstance(
                sub.target, ast.Name
            ):
                resolved = self._resolve_type(info, sub.annotation)
                if resolved is not None:
                    types[sub.target.id] = resolved
            elif isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if not isinstance(sub.value, ast.Call):
                    continue
                resolved = self._infer_call_type(info, sub.value)
                if resolved is not None:
                    types[target.id] = resolved
        return types

    def _infer_call_type(
        self, info: ModuleInfo, call: ast.Call
    ) -> Optional[Tuple[str, str]]:
        """Type of ``x = f(...)``: a constructed class, or the return
        annotation of a resolvable function."""
        callee = self._resolve_call(info, call, None, set(), {})
        if callee.kind == "class":
            return (callee.module, callee.qualname)
        if callee.kind == "function":
            fn = self.function((callee.module, callee.qualname))
            returns = getattr(fn.node, "returns", None) if fn else None
            if returns is not None:
                origin = self.modules.get(callee.module)
                if origin is not None:
                    return self._resolve_type(origin, returns)
        return None

    def _resolve_type(
        self, info: ModuleInfo, annotation: ast.expr
    ) -> Optional[Tuple[str, str]]:
        """Resolve an annotation expression to an indexed class."""
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        rendered = self._render(annotation)
        if rendered is None:
            return None
        parts = rendered.split(".")
        symbol = info.symbols.get(parts[0])
        if symbol is None:
            return None
        if symbol.kind == "class" and len(parts) == 1:
            return (symbol.module, symbol.qualname)
        if symbol.kind == "module" and len(parts) == 2:
            origin = self.modules.get(symbol.module)
            if origin is not None and parts[1] in origin.classes:
                return (symbol.module, parts[1])
        return None

    # -- call resolution -------------------------------------------------
    def _resolve_call(
        self,
        info: ModuleInfo,
        call: ast.Call,
        class_name: Optional[str],
        local_names: Set[str],
        local_types: Dict[str, Tuple[str, str]],
    ) -> Callee:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name_call(info, func.id, local_names)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute_call(
                info, func, class_name, local_names, local_types
            )
        # Calling the result of a call / subscript / lambda: dynamic.
        return Callee(kind="unknown", rendered="<dynamic>")

    def _symbol_callee(self, symbol: Symbol, rendered: str) -> Callee:
        if symbol.kind == "function":
            return Callee(
                "function",
                module=symbol.module,
                qualname=symbol.qualname,
                rendered=rendered,
            )
        if symbol.kind == "class":
            return Callee(
                "class",
                module=symbol.module,
                qualname=symbol.qualname,
                rendered=rendered,
            )
        if symbol.kind == "module":
            return Callee("module", module=symbol.module, rendered=rendered)
        if symbol.kind == "external":
            return Callee("external", rendered=rendered)
        return Callee("unknown", rendered=rendered)

    def _resolve_name_call(
        self, info: ModuleInfo, name: str, local_names: Set[str]
    ) -> Callee:
        symbol = info.symbols.get(name)
        # A locally-bound name shadows the module symbol — unless the
        # binding *is* the module-level def (same name), which the local
        # scan cannot distinguish; prefer the module symbol, which is
        # correct for the overwhelmingly common no-shadowing case.
        if symbol is not None:
            return self._symbol_callee(symbol, name)
        if name in local_names:
            return Callee("unknown", rendered=name)
        if hasattr(builtins, name):
            return Callee("external", rendered=name)
        return Callee("unknown", rendered=name)

    def _resolve_attribute_call(
        self,
        info: ModuleInfo,
        func: ast.Attribute,
        class_name: Optional[str],
        local_names: Set[str],
        local_types: Dict[str, Tuple[str, str]],
    ) -> Callee:
        rendered = self._render(func)
        if rendered is None:
            # Method call on a call result / subscript: dynamic.
            return Callee("unknown", rendered=f"<dynamic>.{func.attr}")
        parts = rendered.split(".")
        root, attrs = parts[0], parts[1:]
        # self.method() / cls.method() inside a class body.
        if root in ("self", "cls") and class_name is not None and len(attrs) == 1:
            return self._lookup_method(
                info.name, class_name, attrs[0], rendered
            )
        # obj.method() on a locally-typed variable.
        if root in local_types and len(attrs) == 1:
            module, cls = local_types[root]
            return self._lookup_method(module, cls, attrs[0], rendered)
        symbol = info.symbols.get(root)
        if symbol is None:
            if root in local_names:
                return Callee("unknown", rendered=rendered)
            if hasattr(builtins, root):
                return Callee("external", rendered=rendered)
            return Callee("unknown", rendered=rendered)
        if symbol.kind == "class" and len(attrs) == 1:
            # ClassName.method(...) — classmethod/static style dispatch.
            return self._lookup_method(
                symbol.module, symbol.qualname, attrs[0], rendered
            )
        if symbol.kind == "module":
            return self._resolve_dotted(
                ".".join([symbol.module] + attrs), rendered
            )
        if symbol.kind == "external":
            return Callee("external", rendered=rendered)
        # Attribute access on an imported function/constant: dynamic.
        return Callee("unknown", rendered=rendered)

    def _resolve_dotted(self, dotted: str, rendered: str) -> Callee:
        """Resolve ``pkg.mod.attr...`` via the longest indexed module
        prefix."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix not in self.modules:
                continue
            origin = self.modules[prefix]
            remainder = parts[cut:]
            if len(remainder) == 1:
                symbol = origin.symbols.get(remainder[0])
                if symbol is not None and symbol.kind in (
                    "function", "class",
                ):
                    return self._symbol_callee(symbol, rendered)
                return Callee("module", module=prefix, rendered=rendered)
            return Callee("module", module=prefix, rendered=rendered)
        if parts[0] == "repro":
            return Callee("missing", rendered=dotted)
        return Callee("external", rendered=rendered)

    def _lookup_method(
        self,
        module: str,
        class_name: str,
        attr: str,
        rendered: str,
        _seen: Optional[Set[Tuple[str, str]]] = None,
    ) -> Callee:
        """Find ``attr`` on a class or its resolvable base classes."""
        seen = _seen if _seen is not None else set()
        if (module, class_name) in seen:
            return Callee("unknown", rendered=rendered)
        seen.add((module, class_name))
        origin = self.modules.get(module)
        if origin is None:
            return Callee("unknown", rendered=rendered)
        cls = origin.classes.get(class_name)
        if cls is None:
            return Callee("unknown", rendered=rendered)
        qualname = cls.methods.get(attr)
        if qualname is not None:
            return Callee(
                "function", module=module, qualname=qualname, rendered=rendered
            )
        for base in cls.bases:
            base_parts = base.split(".")
            symbol = origin.symbols.get(base_parts[0])
            if symbol is None:
                continue
            if symbol.kind == "class" and len(base_parts) == 1:
                resolved = self._lookup_method(
                    symbol.module, symbol.qualname, attr, rendered, seen
                )
            elif symbol.kind == "module" and len(base_parts) == 2:
                resolved = self._lookup_method(
                    symbol.module, base_parts[1], attr, rendered, seen
                )
            else:
                continue
            if resolved.kind == "function":
                return resolved
        return Callee("unknown", rendered=rendered)

    # -- lookups ---------------------------------------------------------
    def function(self, ref: FunctionRef) -> Optional[FunctionInfo]:
        origin = self.modules.get(ref[0])
        return origin.functions.get(ref[1]) if origin else None

    def resolve_string(
        self, info: ModuleInfo, expr: ast.expr
    ) -> Optional[str]:
        """A string literal, or a name/attribute resolving to a
        module-level string constant in the analyzed program."""
        if isinstance(expr, ast.Constant):
            return expr.value if isinstance(expr.value, str) else None
        rendered = self._render(expr)
        if rendered is None:
            return None
        parts = rendered.split(".")
        symbol = info.symbols.get(parts[0])
        if symbol is None:
            return None
        if symbol.kind == "constant" and len(parts) == 1:
            return symbol.value
        if symbol.kind == "module" and len(parts) == 2:
            origin = self.modules.get(symbol.module)
            if origin is not None:
                return origin.constants.get(parts[1])
        return None

    @staticmethod
    def static_prefix(expr: ast.expr) -> Optional[str]:
        """The leading literal text of a string or f-string."""
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        if isinstance(expr, ast.JoinedStr):
            prefix = ""
            for value in expr.values:
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    prefix += value.value
                else:
                    break
            return prefix
        return None

    # -- import closure --------------------------------------------------
    def transitive_imports(
        self, module: str, toplevel_only: bool = False
    ) -> Tuple[Set[str], Set[str]]:
        """(reached modules, missing ``repro.*`` imports) for ``module``.

        BFS over resolved import edges; cycle-safe by construction (the
        visited set), so mutually-importing modules terminate.
        """
        reached: Set[str] = set()
        unresolved: Set[str] = set()
        frontier = [module]
        while frontier:
            current = frontier.pop()
            if current in reached:
                continue
            reached.add(current)
            info = self.modules.get(current)
            if info is None:
                continue
            unresolved |= info.missing_imports
            edges = (
                info.imports_toplevel if toplevel_only else info.imports_all
            )
            frontier.extend(sorted(edges - reached))
        reached.discard(module)
        return reached, unresolved

    # -- reachability ----------------------------------------------------
    def reachable(self, seeds: Iterable[FunctionRef]) -> Reachability:
        result = Reachability()
        queue: List[FunctionRef] = []
        for ref in seeds:
            if self.function(ref) is not None and ref not in result.parents:
                result.parents[ref] = None
                queue.append(ref)
        seen_classes: Set[Tuple[str, str]] = set()

        def enqueue(ref: FunctionRef, parent: FunctionRef) -> None:
            if ref in result.parents:
                return
            if self.function(ref) is None:
                return
            result.parents[ref] = parent
            queue.append(ref)

        def reach_class(module: str, name: str, parent: FunctionRef) -> None:
            if (module, name) in seen_classes:
                return
            seen_classes.add((module, name))
            result.classes.append((module, name))
            result.modules.add(module)
            origin = self.modules.get(module)
            cls = origin.classes.get(name) if origin else None
            if cls is None:
                return
            # Reaching a class conservatively reaches all its methods:
            # which ones execute depends on values the static analysis
            # cannot see (callbacks, dunder protocols), so assume all.
            for method in sorted(cls.methods):
                enqueue((module, cls.methods[method]), parent)

        index = 0
        while index < len(queue):
            ref = queue[index]
            index += 1
            result.functions.append(ref)
            result.modules.add(ref[0])
            fn = self.function(ref)
            assert fn is not None
            for call in fn.calls:
                callee = call.callee
                if callee.kind == "function":
                    enqueue((callee.module, callee.qualname), ref)
                    result.modules.add(callee.module)
                elif callee.kind == "class":
                    reach_class(callee.module, callee.qualname, ref)
                elif callee.kind == "module":
                    result.module_grain.add(callee.module)
                elif callee.kind == "missing":
                    result.missing.append((ref, call))
                elif callee.kind == "unknown":
                    result.unknown.append((ref, call))
        return result

    # -- footprints ------------------------------------------------------
    def footprint(self, seeds: Sequence[FunctionRef]) -> Footprint:
        """The salt footprint of a set of seed functions.

        Within the seed functions' own modules coverage is
        *per-definition* (each reached function/class body and each
        module-level constant it reads is folded individually), so
        sibling stages sharing a definition module do not invalidate
        each other.  The moment the closure crosses into another module
        it widens to *whole-module* granularity plus that module's
        transitive import closure — conservative by design: a module's
        source digest covers every helper it could possibly run.
        """
        stage_modules = tuple(sorted({
            module for module, _ in seeds if module in self.modules
        }))
        reach = self.reachable(seeds)
        exempt: Set[str] = set()
        for module in stage_modules:
            exempt |= self.modules[module].exempt_imports
        external: Set[str] = set()
        exempted_used: Set[str] = set()
        uncovered: Set[str] = set()
        for module in stage_modules:
            uncovered |= self.modules[module].missing_imports
        for _, call in reach.missing:
            uncovered.add(call.callee.rendered)
        touched = (reach.modules | reach.module_grain) - set(stage_modules)
        for module in sorted(touched):
            if module in exempt:
                exempted_used.add(module)
                continue
            closure, closure_missing = self.transitive_imports(module)
            uncovered |= closure_missing
            for candidate in sorted(closure | {module}):
                if candidate in set(stage_modules):
                    continue
                if candidate in exempt:
                    exempted_used.add(candidate)
                else:
                    external.add(candidate)
        entries: List[str] = []
        seen_defs: Set[str] = set()
        for module, qualname in reach.functions:
            if module not in stage_modules:
                continue
            key = f"fn:{module}:{qualname}"
            if key in seen_defs:
                continue
            seen_defs.add(key)
            fn = self.function((module, qualname))
            assert fn is not None
            entries.append(_digest(key, fn.source))
            origin = self.modules[module]
            for load in sorted(fn.loads):
                const_key = f"const:{module}:{load}"
                if const_key in seen_defs:
                    continue
                seen_defs.add(const_key)
                node = origin.constant_nodes[load]
                entries.append(
                    _digest(const_key, node_source(origin.ctx, node))
                )
        for module, name in reach.classes:
            if module not in stage_modules:
                continue
            key = f"cls:{module}:{name}"
            if key in seen_defs:
                continue
            seen_defs.add(key)
            entries.append(
                _digest(key, self.modules[module].classes[name].source)
            )
        for module in sorted(external):
            entries.append(
                _digest(f"mod:{module}", self.modules[module].source_digest())
            )
        return Footprint(
            stage_modules=stage_modules,
            modules=tuple(sorted(external)),
            exempted=tuple(sorted(exempted_used)),
            missing=tuple(sorted(uncovered)),
            salt=_digest(*sorted(entries)),
        )

    # -- stage discovery -------------------------------------------------
    def discover_stages(self) -> List[StageDecl]:
        """Every ``StageSpec(...)`` construction in the analyzed tree.

        Matching is by class name (the last dotted segment), so stage
        graphs in fixture trees are discovered without a full
        ``repro.runtime.graph`` present.
        """
        stages: List[StageDecl] = []
        for module_name in sorted(self.modules):
            info = self.modules[module_name]
            assert info.ctx.tree is not None
            for node in ast.walk(info.ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                rendered = self._render(node.func)
                if rendered is None or rendered.split(".")[-1] != "StageSpec":
                    continue
                stages.append(self._stage_decl(info, node))
        return stages

    def _stage_decl(self, info: ModuleInfo, node: ast.Call) -> StageDecl:
        keywords = {
            kw.arg: kw.value for kw in node.keywords if kw.arg is not None
        }
        name_value = keywords.get("name")
        name = (
            name_value.value
            if isinstance(name_value, ast.Constant)
            and isinstance(name_value.value, str)
            else "<unknown>"
        )
        version_value = keywords.get("version")
        version_explicit = version_value is not None
        version = (
            version_value.value
            if isinstance(version_value, ast.Constant)
            and isinstance(version_value.value, str)
            else "1"
        )
        decl = StageDecl(
            name=name,
            module=info.name,
            node=node,
            version=version,
            version_explicit=version_explicit,
        )
        for role in ("plan", "run", "merge"):
            value = keywords.get(role)
            if value is None:
                decl.unresolved.append((role, "<missing keyword>"))
                continue
            callee = self._resolve_call(
                info,
                ast.Call(func=value, args=[], keywords=[]),
                None,
                set(),
                {},
            )
            if callee.kind == "function":
                decl.seeds[role] = (callee.module, callee.qualname)
            else:
                rendered = self._render(value) or type(value).__name__
                decl.unresolved.append((role, rendered))
        return decl

    # -- export ----------------------------------------------------------
    def graph_json(self) -> Dict[str, Any]:
        """The import and call graphs as one JSON-able document."""
        modules: Dict[str, Any] = {}
        functions: Dict[str, Any] = {}
        for name in sorted(self.modules):
            info = self.modules[name]
            modules[name] = {
                "path": info.ctx.rel_path,
                "imports": sorted(info.imports_toplevel),
                "imports_all": sorted(info.imports_all),
                "missing_imports": sorted(info.missing_imports),
                "footprint_exempt": sorted(info.exempt_imports),
                "classes": sorted(info.classes),
            }
            for qualname in sorted(info.functions):
                fn = info.functions[qualname]
                functions[f"{name}:{qualname}"] = {
                    "calls": [
                        {
                            "line": call.line,
                            "kind": call.callee.kind,
                            "target": (
                                f"{call.callee.module}:{call.callee.qualname}"
                                if call.callee.kind == "function"
                                else call.callee.module or None
                            ),
                            "rendered": call.callee.rendered,
                        }
                        for call in fn.calls
                    ],
                }
        return {
            "schema": "repro.lint/program-graph/v1",
            "modules": modules,
            "functions": functions,
        }


def program_model_for(project: ProjectContext) -> ProgramModel:
    """The (memoized) :class:`ProgramModel` of a lint run's project.

    Rules sharing one :class:`ProjectContext` share one model — the
    C4xx/P5xx/O6xx families all call this from ``finalize``.
    """
    cached = getattr(project, "_program_model", None)
    if cached is None:
        cached = ProgramModel.from_project(project)
        setattr(project, "_program_model", cached)
    return cached
