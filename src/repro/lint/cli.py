"""Command-line entry point: ``python -m repro.lint [paths]``.

Exit status: 0 when every finding is baselined (or none exist), 1 when
new findings are reported, 2 on usage errors (unknown rule selector,
malformed baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional, Sequence

from repro.errors import LintError
from repro.lint import baseline as baseline_mod
from repro.lint.framework import all_rules, run_lint, select_rules
from repro.lint.reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "reprolint: AST-based invariant checks for determinism "
            "(D-rules), error discipline (E-rules), layering (A-rules), "
            "caching (C-rules), observability (O-rules), shard purity "
            "(P-rules), seed lineage (S-rules), exception escape "
            "(X-rules) and resource discipline (I-rules)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=baseline_mod.DEFAULT_BASELINE_NAME,
        help=(
            "baseline file of grandfathered findings "
            f"(default: {baseline_mod.DEFAULT_BASELINE_NAME}; missing file "
            "= empty baseline)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline from current findings: keep entries "
            "still observed, drop stale ones; new findings are NOT "
            "absorbed (use --write-baseline for that)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fan per-file rule passes out over N worker processes "
            "(0 = CPU count; default: serial)"
        ),
    )
    parser.add_argument(
        "--select",
        default="",
        help="comma-separated rule codes or family prefixes (e.g. D,E201)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=[],
        metavar="CODE",
        help="run only this rule code (repeatable; combines with --family)",
    )
    parser.add_argument(
        "--family",
        action="append",
        default=[],
        metavar="PREFIX",
        help=(
            "run only rules whose code starts with this prefix, e.g. C4 "
            "or P (repeatable; combines with --rule)"
        ),
    )
    parser.add_argument(
        "--graph-json",
        metavar="OUT",
        help=(
            "also write the whole-program import/call graph as JSON to "
            "OUT ('-' for stdout)"
        ),
    )
    parser.add_argument(
        "--dataflow-json",
        metavar="OUT",
        help=(
            "also write the interprocedural dataflow report (entrypoint "
            "escape sets, per-stage RNG lineage trees, taint traces) as "
            "JSON to OUT ('-' for stdout)"
        ),
    )
    parser.add_argument(
        "--concurrency-json",
        metavar="OUT",
        help=(
            "also write the concurrency-context report (per-function "
            "execution contexts, T-rule findings with witness chains, "
            "per-stage cost footprints) as JSON to OUT ('-' for stdout)"
        ),
    )
    parser.add_argument(
        "--sarif",
        metavar="OUT",
        help=(
            "also write findings as a SARIF 2.1.0 document to OUT "
            "('-' for stdout); baselined findings are exported as "
            "suppressed results"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:28s} {rule.description}")
        return 0

    selectors = [token for token in args.select.split(",") if token.strip()]
    selectors.extend(token for token in args.rule if token.strip())
    selectors.extend(token for token in args.family if token.strip())
    rules = select_rules(selectors) if selectors else all_rules()
    if selectors and not rules:
        shown = ",".join(selectors)
        print(f"error: no rules match selector {shown!r}", file=sys.stderr)
        return 2

    paths: List[Path] = []
    for raw in args.paths:
        path = Path(raw)
        if not path.exists():
            print(f"error: path does not exist: {raw}", file=sys.stderr)
            return 2
        paths.append(path)

    if args.update_baseline and (args.no_baseline or args.write_baseline):
        print(
            "error: --update-baseline conflicts with "
            "--no-baseline/--write-baseline",
            file=sys.stderr,
        )
        return 2

    result = run_lint(paths, rules=rules, jobs=args.jobs)
    baseline_path = Path(args.baseline)

    if args.graph_json and result.project is not None:
        graph = result.project.program_model().graph_json()
        _emit(args.graph_json, graph)

    if args.dataflow_json and result.project is not None:
        from repro.lint.dataflow import dataflow_for

        report = dataflow_for(result.project).report_json()
        report["time_s"] = round(result.wall_s, 6)
        report["family_time_s"] = {
            family: round(seconds, 6)
            for family, seconds in result.family_wall_s.items()
        }
        _emit(args.dataflow_json, report)

    if args.concurrency_json and result.project is not None:
        from repro.lint.concurrency import concurrency_for

        report = concurrency_for(result.project).report_json()
        report["time_s"] = round(result.wall_s, 6)
        report["family_time_s"] = {
            family: round(seconds, 6)
            for family, seconds in result.family_wall_s.items()
        }
        _emit(args.concurrency_json, report)

    if args.write_baseline:
        baseline_mod.write_baseline(baseline_path, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path}",
        )
        return 0

    try:
        baseline = (
            Counter() if args.no_baseline else baseline_mod.load_baseline(baseline_path)
        )
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    new, grandfathered, stale = baseline_mod.partition(result.findings, baseline)

    if args.sarif:
        from repro.lint.sarif import build_sarif, validate_sarif

        sarif_doc = build_sarif(new, grandfathered, rules=rules)
        try:
            validate_sarif(sarif_doc)
        except LintError as exc:
            print(f"error: emitted SARIF is invalid: {exc}", file=sys.stderr)
            return 2
        _emit(args.sarif, sarif_doc)

    if args.update_baseline:
        baseline_mod.write_baseline(baseline_path, grandfathered)
        print(
            f"updated {baseline_path}: kept {len(grandfathered)} "
            f"entr{'y' if len(grandfathered) == 1 else 'ies'}, dropped "
            f"{len(stale)} stale",
        )
        stale = []

    renderer = render_json if args.format == "json" else render_text
    print(
        renderer(
            new, grandfathered, stale, result.files_checked,
            time_s=result.wall_s,
        )
    )
    return 1 if new else 0


def _emit(destination: str, document: dict) -> None:
    """Write a JSON document to a path, or stdout for ``-``."""
    payload = json.dumps(document, indent=2, sort_keys=True)
    if destination == "-":
        print(payload)
        return
    out = Path(destination)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(payload + "\n", encoding="utf-8")
