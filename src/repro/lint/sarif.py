"""SARIF 2.1.0 export for reprolint findings.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
(Static Analysis Results Interchange Format) is what code-scanning UIs
ingest; ``python -m repro.lint --sarif OUT`` writes one run per
invocation so CI can upload findings as first-class annotations.

Mapping choices:

* every registered rule that produced at least one finding (plus every
  rule explicitly selected for the run) appears in
  ``tool.driver.rules`` — SARIF consumers render rule metadata from
  here, not from the results;
* *new* findings become plain results at level ``warning``;
* *baselined* (grandfathered) findings are still exported, but carry a
  ``suppressions`` entry with kind ``external`` so scanners show them
  as acknowledged rather than re-alerting on every push;
* ``partialFingerprints`` carries the same rule/path/snippet identity
  the baseline file uses, so result matching across runs is stable
  under pure line-number shifts.

:func:`validate_sarif` is the structural round-trip check the test
suite (and any pipeline) can run on an emitted document.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

from repro.errors import LintError
from repro.lint.findings import Finding

#: the SARIF version this module emits (and validates)
SARIF_VERSION = "2.1.0"

#: the canonical $schema URI for SARIF 2.1.0 documents
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

#: the tool name advertised in ``tool.driver.name``
TOOL_NAME = "reprolint"


def _rule_descriptor(rule: Any) -> Dict[str, Any]:
    """One ``reportingDescriptor`` from a registered rule object."""
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.description},
        "defaultConfiguration": {"level": "warning"},
    }


def _result(
    finding: Finding, rule_index: Dict[str, int], suppressed: bool
) -> Dict[str, Any]:
    """One SARIF ``result`` from one finding."""
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": "warning",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {
            # The baseline identity, verbatim: rule + path + stripped
            # source line, stable under pure line shifts.
            "reprolint/v1": "|".join(finding.fingerprint()),
        },
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    if suppressed:
        result["suppressions"] = [
            {"kind": "external", "justification": "baselined finding"}
        ]
    return result


def build_sarif(
    new: Sequence[Finding],
    grandfathered: Sequence[Finding] = (),
    rules: Iterable[Any] = (),
) -> Dict[str, Any]:
    """Assemble a single-run SARIF 2.1.0 document.

    ``rules`` should be the rule objects the lint run executed; rules
    that match no finding are still listed (an empty result set must
    still say what was checked).
    """
    descriptors: List[Dict[str, Any]] = []
    rule_index: Dict[str, int] = {}
    for rule in sorted(rules, key=lambda r: r.code):
        if rule.code in rule_index:
            continue
        rule_index[rule.code] = len(descriptors)
        descriptors.append(_rule_descriptor(rule))
    results = [
        _result(finding, rule_index, suppressed=False)
        for finding in sorted(new)
    ]
    results.extend(
        _result(finding, rule_index, suppressed=True)
        for finding in sorted(grandfathered)
    )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": "docs/linting.md",
                        "rules": descriptors,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def validate_sarif(document: Any) -> None:
    """Structurally validate an emitted SARIF document.

    Checks the invariants a SARIF 2.1.0 consumer relies on: version,
    one well-formed run, rule descriptors with unique ids, and every
    result carrying a rule id, a message and one physical location with
    a positive start line.  Raises :class:`~repro.errors.LintError` on
    the first violation.
    """
    if not isinstance(document, dict):
        raise LintError("SARIF document must be a JSON object")
    if document.get("version") != SARIF_VERSION:
        raise LintError(
            f"SARIF version must be {SARIF_VERSION!r}, "
            f"got {document.get('version')!r}"
        )
    runs = document.get("runs")
    if not isinstance(runs, list) or not runs:
        raise LintError("SARIF document must carry a non-empty 'runs' list")
    for run in runs:
        driver = run.get("tool", {}).get("driver", {})
        if not driver.get("name"):
            raise LintError("SARIF run is missing tool.driver.name")
        rule_ids = [rule.get("id") for rule in driver.get("rules", [])]
        if any(not rule_id for rule_id in rule_ids):
            raise LintError("SARIF rule descriptor is missing an id")
        if len(set(rule_ids)) != len(rule_ids):
            raise LintError("SARIF rule descriptors carry duplicate ids")
        known = set(rule_ids)
        for result in run.get("results", []):
            rule_id = result.get("ruleId")
            if not rule_id:
                raise LintError("SARIF result is missing ruleId")
            if known and rule_id not in known:
                raise LintError(
                    f"SARIF result names unknown rule {rule_id!r}"
                )
            if not result.get("message", {}).get("text"):
                raise LintError("SARIF result is missing message.text")
            locations = result.get("locations")
            if not isinstance(locations, list) or len(locations) != 1:
                raise LintError(
                    "SARIF result must carry exactly one location"
                )
            physical = locations[0].get("physicalLocation", {})
            if not physical.get("artifactLocation", {}).get("uri"):
                raise LintError(
                    "SARIF result location is missing artifact uri"
                )
            start = physical.get("region", {}).get("startLine", 0)
            if not isinstance(start, int) or start < 1:
                raise LintError(
                    "SARIF result region.startLine must be >= 1"
                )
