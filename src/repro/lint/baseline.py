"""Baseline files: grandfathering findings without silencing rules.

A baseline is a committed JSON multiset of finding fingerprints
``(rule, path, snippet)``.  Counts matter: if a file had two baselined
violations and a third appears, exactly one is reported as new.  The
snippet-based fingerprint survives pure line-number drift, so editing
unrelated code above a grandfathered finding does not resurface it.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.errors import LintError
from repro.lint.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".reprolint-baseline.json"

Fingerprint = Tuple[str, str, str]


def load_baseline(path: Path) -> Counter:
    """Read a baseline file into a fingerprint multiset.

    A missing file is an empty baseline, so fresh checkouts and new
    projects need no setup step.
    """
    if not path.exists():
        return Counter()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise LintError(f"malformed baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or "entries" not in payload:
        raise LintError(f"malformed baseline {path}: missing 'entries'")
    baseline: Counter = Counter()
    for entry in payload["entries"]:
        fingerprint = (
            str(entry.get("rule", "")),
            str(entry.get("path", "")),
            str(entry.get("snippet", "")),
        )
        baseline[fingerprint] += int(entry.get("count", 1))
    return baseline


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Serialize ``findings`` as the new baseline."""
    counts: Counter = Counter(finding.fingerprint() for finding in findings)
    entries = [
        {"rule": rule, "path": rel_path, "snippet": snippet, "count": count}
        for (rule, rel_path, snippet), count in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def partition(
    findings: Sequence[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding], List[Fingerprint]]:
    """Split findings into (new, grandfathered) and list stale entries.

    Stale entries — baseline fingerprints no match consumed — signal
    fixed violations whose baseline entry should be dropped.
    """
    remaining = Counter(baseline)
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        fingerprint = finding.fingerprint()
        if remaining.get(fingerprint, 0) > 0:
            remaining[fingerprint] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale = sorted(
        fingerprint for fingerprint, count in remaining.items() if count > 0
    )
    return new, grandfathered, stale
