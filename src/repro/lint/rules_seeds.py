"""S-rules: seed lineage.

Replays are only cold-equals-warm because every ``random.Random`` in
shard code descends from the shard's seeded root through the
:mod:`repro.util.rng` derivation APIs (``seeded_rng`` / ``spawn_rng`` /
``RngStreams.spawn``/``fork``).  A raw ``random.Random()`` three helpers
below a stage ``run`` draws from process entropy and silently breaks
that guarantee; a stream *name* derived in two places makes two
components draw correlated values; ``fixed_rng`` outside tests hides a
missing injection point.  These rules ride the interprocedural engine
(:mod:`repro.lint.dataflow`), so the witness for each finding is a real
static call chain from the stage's ``run`` seed down to the offending
``file:line``.

* **S701** — raw ``random.Random(...)`` reachable from a stage ``run``;
* **S702** — the same literal stream name derived at two different call
  sites in the same API family (a double-spent seed);
* **S703** — ``fixed_rng`` use outside test code;
* **S704** — a stage ``run`` returning an RNG or stream object (the
  shard boundary must carry data, not generators).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.lint.dataflow import (
    _DERIVE_FAMILIES,
    _RNG_PRODUCERS,
    DataflowAnalysis,
    RngSite,
    dataflow_for,
    is_rng_module,
    is_test_module,
)
from repro.lint.findings import Finding
from repro.lint.framework import ProjectContext, Rule, register


def _site_ctx(project: ProjectContext, site: RngSite):
    """(FileContext, module-is-exempt) for one RNG site."""
    module = site.function[0]
    ctx = project.context_for_module(module)
    if ctx is None:
        return None, True
    exempt = is_rng_module(module) or is_test_module(ctx.rel_path, module)
    return ctx, exempt


class _SeedRule(Rule):
    """Shared driver over the dataflow engine's RNG-site table."""

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        if not project.files:
            return
        df = dataflow_for(project)
        yield from self._check(project, df)

    def _check(
        self, project: ProjectContext, df: DataflowAnalysis
    ) -> Iterable[Finding]:
        return ()


@register
class TaintedRngRule(_SeedRule):
    """S701 — raw ``random.Random`` on a stage run path."""

    code = "S701"
    name = "seed-tainted-rng"
    description = (
        "random.Random(...) reachable from a stage's run is not derived "
        "from the shard's seeded root; use seeded_rng/spawn_rng or the "
        "world's RngStreams"
    )

    def _check(
        self, project: ProjectContext, df: DataflowAnalysis
    ) -> Iterable[Finding]:
        run_reach = df.run_reachable()
        sites = df.rng_sites()
        for ref in sorted(run_reach):
            if is_rng_module(ref[0]):
                continue
            ctx = project.context_for_module(ref[0])
            if ctx is None:
                continue
            for site in sites.get(ref, ()):
                if site.api != "raw":
                    continue
                for stage in run_reach[ref]:
                    chain = df.run_path_chain(stage, ref)
                    witness = " -> ".join(
                        chain + [f"{ctx.rel_path}:{site.line}"]
                    )
                    yield Finding(
                        path=ctx.rel_path,
                        line=site.line,
                        col=site.col,
                        rule=self.code,
                        message=(
                            f"random.Random(...) on the run path of stage "
                            f"'{stage}' is not derived from the shard's "
                            f"seeded root [witness: {witness}]"
                        ),
                        snippet=site.snippet,
                    )


@register
class DoubleSpentSeedRule(_SeedRule):
    """S702 — one literal stream name derived at two call sites."""

    code = "S702"
    name = "seed-double-spent"
    description = (
        "the same literal stream name is derived at two different call "
        "sites in one API family: two consumers would draw correlated "
        "values from one seed"
    )

    def _check(
        self, project: ProjectContext, df: DataflowAnalysis
    ) -> Iterable[Finding]:
        groups: Dict[Tuple[str, str], List[Tuple[RngSite, object]]] = {}
        for ref, sites in sorted(df.rng_sites().items()):
            for site in sites:
                family = _DERIVE_FAMILIES.get(site.api)
                if family is None or not site.literal or site.name is None:
                    continue
                ctx, exempt = _site_ctx(project, site)
                if ctx is None or exempt:
                    continue
                groups.setdefault((family, site.name), []).append((site, ctx))
        for (family, name), members in sorted(groups.items()):
            distinct = {
                (ctx.rel_path, site.line, site.col) for site, ctx in members
            }
            if len(distinct) < 2:
                continue
            locations = ", ".join(
                f"{ctx.rel_path}:{site.line}"
                for site, ctx in sorted(
                    members, key=lambda m: (m[1].rel_path, m[0].line)
                )
            )
            for site, ctx in members:
                yield Finding(
                    path=ctx.rel_path,
                    line=site.line,
                    col=site.col,
                    rule=self.code,
                    message=(
                        f"stream name '{name}' ({family} family) is "
                        f"derived at {len(distinct)} sites: {locations}; "
                        "each seed must have exactly one consumer"
                    ),
                    snippet=site.snippet,
                )


@register
class FixedRngOutsideTestsRule(_SeedRule):
    """S703 — ``fixed_rng`` in non-test code."""

    code = "S703"
    name = "seed-fixed-rng"
    description = (
        "fixed_rng(...) outside tests: library code must take an "
        "injected rng (or derive one from the world's streams), not "
        "fabricate a constant-seed generator"
    )

    def _check(
        self, project: ProjectContext, df: DataflowAnalysis
    ) -> Iterable[Finding]:
        for ref, sites in sorted(df.rng_sites().items()):
            for site in sites:
                if site.api != "fixed_rng":
                    continue
                ctx, exempt = _site_ctx(project, site)
                if ctx is None or exempt:
                    continue
                yield Finding(
                    path=ctx.rel_path,
                    line=site.line,
                    col=site.col,
                    rule=self.code,
                    message=(
                        f"fixed_rng(...) in {site.function[1]} is outside "
                        "test code; inject the rng from the caller or "
                        "derive it from the shard's streams"
                    ),
                    snippet=site.snippet,
                )


@register
class RngEscapesShardRule(_SeedRule):
    """S704 — a stage ``run`` returning an RNG/stream object."""

    code = "S704"
    name = "seed-rng-escapes-shard"
    description = (
        "a stage run function returns an RNG or RngStreams value: shard "
        "results must be data, generator state does not survive the "
        "merge boundary deterministically"
    )

    def _check(
        self, project: ProjectContext, df: DataflowAnalysis
    ) -> Iterable[Finding]:
        model = df.model
        sites = df.rng_sites()
        for decl in model.discover_stages():
            run_seed = decl.seeds.get("run")
            fn = model.function(run_seed) if run_seed else None
            if run_seed is None or fn is None:
                continue
            ctx = project.context_for_module(run_seed[0])
            if ctx is None:
                continue
            producer_at = {
                (site.line, site.col)
                for site in sites.get(run_seed, ())
                if site.api in _RNG_PRODUCERS
            }
            rng_names: Set[str] = set()
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                if (
                    node.value.lineno,
                    node.value.col_offset,
                ) not in producer_at:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        rng_names.add(target.id)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Return) or node.value is None:
                    continue
                leaked = self._leaked_rng(node.value, rng_names, producer_at)
                if leaked is None:
                    continue
                yield ctx.finding(
                    self,
                    node,
                    f"stage '{decl.name}' run returns {leaked}; return "
                    "drawn values instead of the generator",
                )

    @staticmethod
    def _leaked_rng(
        expr: ast.expr,
        rng_names: Set[str],
        producer_at: Set[Tuple[int, int]],
    ):
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and sub.id in rng_names:
                return f"the RNG bound to '{sub.id}'"
            if isinstance(sub, ast.Call) and (
                (sub.lineno, sub.col_offset) in producer_at
            ):
                return "a freshly derived RNG"
        return None
