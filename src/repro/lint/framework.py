"""reprolint core: file contexts, the rule registry, and the runner.

The framework is deliberately small.  A :class:`Rule` sees one parsed
file at a time through :class:`FileContext` (AST, source lines, module
name, import table) and may run a whole-project pass in
:meth:`Rule.finalize` through :class:`ProjectContext` (used by the
import-cycle rule).  Suppression happens in exactly two places, both
owned by the framework, never by rules:

* inline pragmas — ``# reprolint: disable=D101`` on the offending line
  (or ``disable=all``), and ``# reprolint: disable-file=E201`` anywhere
  in the file;
* the committed baseline (see :mod:`repro.lint.baseline`).
"""

from __future__ import annotations

import ast
import concurrent.futures
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.errors import LintError
from repro.lint.findings import Finding

PARSE_ERROR_RULE = "P001"

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+)"
)


def _parse_pragmas(lines: Sequence[str]) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Return (line -> codes, file-level codes).  Codes are upper-case;
    the special token ``ALL`` suppresses every rule."""
    per_line: Dict[int, Set[str]] = {}
    per_file: Set[str] = set()
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if not match:
            continue
        codes = {
            code.strip().upper()
            for code in match.group(2).split(",")
            if code.strip()
        }
        if match.group(1) == "disable-file":
            per_file |= codes
        else:
            per_line.setdefault(lineno, set()).update(codes)
    return per_line, per_file


def module_name_for(path: Path) -> str:
    """Dotted module name, derived from the ``__init__.py`` chain.

    Climbs parent directories for as long as they are packages, so
    ``src/repro/web/browser.py`` maps to ``repro.web.browser`` no matter
    where the tree is checked out.
    """
    path = path.resolve()
    parts: List[str] = [] if path.name == "__init__.py" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) or path.stem


class FileContext:
    """Everything a rule may want to know about one source file."""

    def __init__(self, path: Path, rel_path: str, source: str) -> None:
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.module = module_name_for(path)
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[Finding] = None
        try:
            self.tree = ast.parse(source, filename=rel_path)
        except SyntaxError as exc:
            self.parse_error = Finding(
                path=rel_path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=PARSE_ERROR_RULE,
                message=f"syntax error: {exc.msg}",
                snippet=(exc.text or "").strip(),
            )
        self._line_pragmas, self._file_pragmas = _parse_pragmas(self.lines)
        #: local name -> fully-qualified origin, e.g. ``Random`` ->
        #: ``random.Random`` for ``from random import Random`` and
        #: ``np`` -> ``numpy`` for ``import numpy as np``.
        self.imported_names: Dict[str, str] = {}
        if self.tree is not None:
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        local = alias.asname or alias.name.split(".")[0]
                        origin = alias.name if alias.asname else alias.name.split(".")[0]
                        self.imported_names[local] = origin
                elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                    for alias in node.names:
                        local = alias.asname or alias.name
                        self.imported_names[local] = f"{node.module}.{alias.name}"

    @property
    def package(self) -> str:
        """First package segment below ``repro`` (``web`` for
        ``repro.web.browser``).  Outside a ``repro`` tree (e.g. lint
        fixtures) the first dotted segment, or the bare module name."""
        parts = self.module.split(".")
        if parts[0] == "repro" and len(parts) > 1:
            return parts[1]
        return parts[0]

    @property
    def basename(self) -> str:
        return self.path.name

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Render ``a.b.c`` chains, resolving the root through the file's
        import table (so ``dt.now`` becomes ``datetime.datetime.now``
        after ``from datetime import datetime as dt``)."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imported_names.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(
            path=self.rel_path,
            line=line,
            col=col,
            rule=rule.code,
            message=message,
            snippet=snippet,
        )

    def is_suppressed(self, finding: Finding) -> bool:
        if "ALL" in self._file_pragmas or finding.rule in self._file_pragmas:
            return True
        codes = self._line_pragmas.get(finding.line, ())
        return "ALL" in codes or finding.rule in codes


@dataclass
class ProjectContext:
    """Cross-file state made available to :meth:`Rule.finalize`."""

    files: Dict[str, FileContext] = field(default_factory=dict)

    def add(self, ctx: FileContext) -> None:
        self.files[ctx.rel_path] = ctx

    @property
    def modules(self) -> Dict[str, FileContext]:
        return {ctx.module: ctx for ctx in self.files.values()}

    def context_for_module(self, module: str) -> Optional[FileContext]:
        return self.modules.get(module)

    def program_model(self):
        """The whole-program model of this project, built on first use
        and shared by every rule (see :mod:`repro.lint.program`)."""
        # Imported here: program.py builds on the framework's contexts,
        # so the module-level dependency points the other way.
        from repro.lint.program import program_model_for

        return program_model_for(self)


class Rule:
    """Base class for reprolint rules.  Subclasses set ``code`` (e.g.
    ``D101``), ``name`` (kebab-case slug) and ``description``, and
    implement :meth:`check_file` and/or :meth:`finalize`."""

    code: str = ""
    name: str = ""
    description: str = ""

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        return ()


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.code:
        raise LintError(f"rule {rule_cls.__name__} has no code")
    existing = _REGISTRY.get(rule_cls.code)
    if existing is not None and existing is not rule_cls:
        raise LintError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def load_builtin_rules() -> None:
    """Import the rule modules for their registration side effects."""
    from repro.lint import (  # noqa: F401
        rules_cache,
        rules_concurrency,
        rules_cost,
        rules_determinism,
        rules_errors,
        rules_escape,
        rules_layering,
        rules_obs,
        rules_purity,
        rules_resources,
        rules_seeds,
    )


def all_rules() -> List[Rule]:
    load_builtin_rules()
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def select_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate registered rules, optionally filtered by code or by
    family prefix (``D``, ``E201``, ...)."""
    rules = all_rules()
    if not select:
        return rules
    wanted = [token.strip().upper() for token in select if token.strip()]
    return [
        rule
        for rule in rules
        if any(rule.code == token or rule.code.startswith(token) for token in wanted)
    ]


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in sorted order, skipping
    caches and hidden directories."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            # Only judge components *below* the search root, so a repo
            # checked out under a hidden directory still lints.
            try:
                relative_parts = candidate.relative_to(path).parts
            except ValueError:
                relative_parts = candidate.parts
            if any(
                part == "__pycache__" or part.startswith(".")
                for part in relative_parts
            ):
                continue
            seen.add(resolved)
            yield candidate


@dataclass
class LintResult:
    findings: List[Finding]
    files_checked: int
    #: the project the run analyzed — lets callers (the CLI's
    #: ``--graph-json``) reuse the already-built program model
    project: Optional[ProjectContext] = None
    #: wall-clock duration of the run, for the JSON report / ledger
    wall_s: float = 0.0
    #: wall-clock seconds spent per rule family (first letter of the
    #: rule code), folded into the ledger as lint.time_s{family=...}
    family_wall_s: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``0`` means the CPU count, ``None``
    (or anything below 2) means serial."""
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs or 1)


def _lint_file_worker(
    task: Tuple[str, str, Tuple[str, ...]]
) -> Tuple[List[Finding], Dict[str, float]]:
    """Per-file rule pass in a worker process: re-parse the file and run
    every registered rule in ``codes``.  Top-level (picklable) and
    registry-driven — rule instances never cross the process boundary,
    only their codes do.  Returns the findings plus the wall seconds
    spent per rule family."""
    path_str, rel, codes = task
    wanted = set(codes)
    active = [rule for rule in all_rules() if rule.code in wanted]
    path = Path(path_str)
    ctx = FileContext(path, rel, path.read_text(encoding="utf-8"))
    if ctx.parse_error is not None:
        # The parent's own context carries the parse error; nothing to
        # run here.
        return [], {}
    findings: List[Finding] = []
    family_s: Dict[str, float] = {}
    for rule in active:
        rule_start = time.monotonic()
        for finding in rule.check_file(ctx):
            if not ctx.is_suppressed(finding):
                findings.append(finding)
        family = rule.code[:1]
        family_s[family] = (
            family_s.get(family, 0.0) + time.monotonic() - rule_start
        )
    return findings, family_s


def _poolable(rules: Sequence[Rule]) -> bool:
    """Per-file passes can fan out only when every rule is recoverable
    from the registry by code inside a worker process."""
    return all(
        type(rule) is _REGISTRY.get(rule.code) for rule in rules
    )


def run_lint(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
    jobs: Optional[int] = None,
) -> LintResult:
    """Lint every Python file under ``paths`` and return the findings.

    ``root`` anchors the relative paths used in reports and baselines;
    it defaults to the current working directory.  ``jobs`` fans the
    per-file rule passes out over worker processes (``0`` = CPU count);
    the program-model build and every ``finalize`` pass stay
    single-threaded in the parent, so whole-program rules see one
    consistent model either way.
    """
    started = time.monotonic()
    active = list(rules) if rules is not None else all_rules()
    root = (root or Path.cwd()).resolve()
    project = ProjectContext()
    findings: List[Finding] = []
    family_s: Dict[str, float] = {}

    def charge(rule: Rule, seconds: float) -> None:
        family = rule.code[:1]
        family_s[family] = family_s.get(family, 0.0) + seconds

    files_checked = 0
    workers = resolve_jobs(jobs)
    fan_out = workers > 1 and _poolable(active)
    tasks: List[Tuple[str, str, Tuple[str, ...]]] = []
    codes = tuple(sorted(rule.code for rule in active))
    for path in iter_python_files(paths):
        files_checked += 1
        resolved = path.resolve()
        try:
            rel = resolved.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        ctx = FileContext(resolved, rel, resolved.read_text(encoding="utf-8"))
        project.add(ctx)
        if ctx.parse_error is not None:
            findings.append(ctx.parse_error)
            continue
        if fan_out:
            tasks.append((str(resolved), rel, codes))
            continue
        for rule in active:
            rule_start = time.monotonic()
            for finding in rule.check_file(ctx):
                if not ctx.is_suppressed(finding):
                    findings.append(finding)
            charge(rule, time.monotonic() - rule_start)
    if fan_out and tasks:
        n_workers = min(workers, len(tasks))
        chunksize = max(1, len(tasks) // (n_workers * 4))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=n_workers
        ) as pool:
            for batch, batch_family_s in pool.map(
                _lint_file_worker, tasks, chunksize=chunksize
            ):
                findings.extend(batch)
                for family, seconds in batch_family_s.items():
                    family_s[family] = family_s.get(family, 0.0) + seconds
    for rule in active:
        rule_start = time.monotonic()
        for finding in rule.finalize(project):
            ctx = project.files.get(finding.path)
            if ctx is None or not ctx.is_suppressed(finding):
                findings.append(finding)
        charge(rule, time.monotonic() - rule_start)
    # Finding equality is (path, line, col, rule): collapse duplicates a
    # rule may emit when scopes overlap.
    findings = sorted(set(findings))
    return LintResult(
        findings=findings,
        files_checked=files_checked,
        project=project,
        wall_s=time.monotonic() - started,
        family_wall_s=dict(sorted(family_s.items())),
    )
