"""E-rules: error discipline.

Callers of ``repro`` are promised one catchable base class
(:class:`repro.errors.ReproError`) at every API boundary.  These rules
keep that promise honest: every raise must speak the taxonomy, nothing
may swallow arbitrary exceptions, and input validation must not hide in
``assert`` statements that ``python -O`` strips.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.lint.findings import Finding
from repro.lint.framework import FileContext, Rule, register

#: Files where ``raise SystemExit`` is the sanctioned way to end the
#: process (console entry points).
SYSTEM_EXIT_FILES = {"cli.py", "__main__.py"}


def repro_error_names() -> Set[str]:
    """Names of :class:`ReproError` and every (transitive) subclass.

    Discovered live from :mod:`repro.errors`, so a newly added error
    class is allowed without touching the linter.
    """
    from repro.errors import ReproError

    names: Set[str] = set()
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        if cls.__name__ in names:
            continue
        names.add(cls.__name__)
        stack.extend(cls.__subclasses__())
    return names


def _base_name(node: ast.AST) -> Optional[str]:
    """Last dotted segment of a base-class expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _local_error_classes(tree: ast.Module, allowed: Set[str]) -> Set[str]:
    """Classes defined in this file that derive (transitively, by name)
    from an allowed error class."""
    bases_by_class: Dict[str, List[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            bases_by_class[node.name] = [
                name
                for name in (_base_name(base) for base in node.bases)
                if name is not None
            ]
    local: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for cls, bases in bases_by_class.items():
            if cls in local or cls in allowed:
                continue
            if any(base in allowed or base in local for base in bases):
                local.add(cls)
                changed = True
    return local


@register
class RaiseTaxonomyRule(Rule):
    """E201 — every raise must be a :class:`ReproError` subclass so one
    ``except ReproError`` guards any API boundary."""

    code = "E201"
    name = "raise-outside-taxonomy"
    description = (
        "raise of an exception that is not a ReproError subclass "
        "(SystemExit allowed in cli.py/__main__.py)"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        allowed = repro_error_names()
        allowed |= _local_error_classes(ctx.tree, allowed)
        if ctx.basename in SYSTEM_EXIT_FILES:
            allowed.add("SystemExit")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise):
                continue
            exc = node.exc
            if exc is None:
                continue  # bare re-raise
            target = exc.func if isinstance(exc, ast.Call) else exc
            name = _base_name(target)
            if name is None:
                yield ctx.finding(
                    self,
                    node,
                    "raise of a dynamic expression; raise a named "
                    "ReproError subclass instead",
                )
                continue
            if name in allowed:
                continue
            if not isinstance(exc, ast.Call) and name[:1].islower():
                continue  # re-raising a caught exception variable
            yield ctx.finding(
                self,
                node,
                f"raise {name}(...) is outside the ReproError taxonomy; "
                "use or add a subclass in repro/errors.py",
            )


@register
class BareExceptRule(Rule):
    """E202 — a bare ``except:`` swallows everything, including
    ``KeyboardInterrupt`` and genuine bugs."""

    code = "E202"
    name = "bare-except"
    description = "bare except: clause; catch ReproError or a specific type"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self,
                    node,
                    "bare except: hides real failures; catch ReproError "
                    "or a specific exception type",
                )


@register
class AssertValidationRule(Rule):
    """E203 — ``assert`` disappears under ``python -O``; validating a
    function's inputs with it silently turns off the check in optimized
    runs.  Narrowing asserts on derived state (``assert obj.field is not
    None``) are allowed."""

    code = "E203"
    name = "assert-for-validation"
    description = (
        "assert on a function parameter (input validation); raise "
        "ValidationError instead"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            params = {
                arg.arg
                for arg in (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])
                )
            }
            params.discard("self")
            params.discard("cls")
            if not params:
                continue
            for stmt in ast.walk(node):
                if not isinstance(stmt, ast.Assert):
                    continue
                hit = self._direct_param_use(stmt.test, params)
                if hit is not None:
                    yield ctx.finding(
                        self,
                        stmt,
                        f"assert validates parameter {hit!r} but is "
                        "stripped under python -O; raise "
                        "ValidationError instead",
                    )

    @staticmethod
    def _direct_param_use(test: ast.AST, params: Set[str]) -> Optional[str]:
        """First parameter used *directly* in the assert condition.

        A parameter that only appears as the base of an attribute access
        (``assert ctx.tree is not None``) is treated as narrowing, not
        validation, and does not count.
        """
        attribute_bases = {
            id(node.value)
            for node in ast.walk(test)
            if isinstance(node, ast.Attribute)
        }
        for node in ast.walk(test):
            if (
                isinstance(node, ast.Name)
                and node.id in params
                and id(node) not in attribute_bases
            ):
                return node.id
        return None
