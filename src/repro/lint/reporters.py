"""Rendering lint results as text (for humans/CI logs) or JSON (for
tooling).  Reporters are pure: they take the partitioned findings and
return the full report string."""

from __future__ import annotations

import json
from typing import List, Optional, Sequence

from repro.lint.baseline import Fingerprint
from repro.lint.findings import Finding


def render_text(
    new: Sequence[Finding],
    grandfathered: Sequence[Finding],
    stale: Sequence[Fingerprint],
    files_checked: int,
    time_s: Optional[float] = None,
) -> str:
    lines: List[str] = []
    for finding in new:
        lines.append(f"{finding.location()}: {finding.rule} {finding.message}")
    for rule, path, snippet in stale:
        lines.append(
            f"note: stale baseline entry {rule} for {path} "
            f"({snippet!r} no longer found) — regenerate with --write-baseline"
        )
    summary = (
        f"{files_checked} file(s) checked: "
        f"{len(new)} finding(s), {len(grandfathered)} baselined, "
        f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}"
    )
    if time_s is not None:
        summary += f" in {time_s:.2f}s"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    new: Sequence[Finding],
    grandfathered: Sequence[Finding],
    stale: Sequence[Fingerprint],
    files_checked: int,
    time_s: Optional[float] = None,
) -> str:
    payload = {
        "files_checked": files_checked,
        "findings": [finding.to_dict() for finding in new],
        "baselined": [finding.to_dict() for finding in grandfathered],
        "stale_baseline_entries": [
            {"rule": rule, "path": path, "snippet": snippet}
            for rule, path, snippet in stale
        ],
        "ok": not new,
    }
    if time_s is not None:
        payload["time_s"] = round(time_s, 6)
    return json.dumps(payload, indent=2)
