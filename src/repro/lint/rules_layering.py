"""A-rules: layering.

The package DAG keeps the measurement pipeline honest: substrate
packages (``web``, ``dnssim``, ``netflow``) must not reach up into the
pipeline (``core``), and ``core`` must not reach into presentation
(``analysis``, ``cli``) — otherwise the pipeline could accidentally read
simulator ground truth, which the README forbids.  Ranks encode the
allowed direction once; A301 checks every import against them and A302
rejects module-level cycles outright.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.framework import FileContext, ProjectContext, Rule, register

#: Import layering: a module may import only strictly lower ranks (or
#: its own package).  Equal ranks mark independent siblings that must
#: not import each other.
LAYER_RANKS: Dict[str, int] = {
    "errors": 0,
    "util": 10,
    "config": 10,
    "lint": 10,
    # obs sits with the foundations on purpose: every simulation and
    # runtime layer may instrument itself through it, but obs itself may
    # import nothing above repro.errors — observability can never grow a
    # dependency on the pipeline it observes.
    "obs": 10,
    # columnar is pure data-structure substrate (schemas, packed
    # tables, chunk geometry): every domain layer may batch through it,
    # but it may never learn what a flow or a request is
    "columnar": 15,
    "geodata": 20,
    "netbase": 20,
    "cloud": 30,
    "dnssim": 40,
    "web": 50,
    "geoloc": 60,
    "netflow": 60,
    "datasets": 70,
    "core": 80,
    "io": 90,
    "analysis": 90,
    "runtime": 90,
    "repro": 95,
    # the study service wraps the runtime facade (and the obs ledger)
    # behind a transport; only the CLI sits above it
    "serve": 96,
    "cli": 100,
    "__main__": 110,
}


def _imported_repro_packages(
    ctx: FileContext,
) -> Iterable[Tuple[ast.AST, str]]:
    """Yield (node, package) for every import of a ``repro.*`` package,
    including lazy function-level imports (layering rot is layering rot
    even behind a deferred import)."""
    assert ctx.tree is not None
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro":
                    yield node, parts[1] if len(parts) > 1 else "repro"
        elif isinstance(node, ast.ImportFrom):
            module = _resolve_from_import(ctx, node)
            if module is None:
                continue
            parts = module.split(".")
            if parts[0] == "repro":
                yield node, parts[1] if len(parts) > 1 else "repro"


def _resolve_from_import(
    ctx: FileContext, node: ast.ImportFrom
) -> Optional[str]:
    """Absolute dotted module for an ImportFrom, resolving relativity
    against the file's own module path."""
    if node.level == 0:
        return node.module
    base = ctx.module.split(".")
    # one level strips the module name itself, further levels strip
    # packages; guard against over-deep relative imports.
    if node.level > len(base):
        return None
    prefix = base[: len(base) - node.level]
    if node.module:
        prefix.append(node.module)
    return ".".join(prefix) if prefix else None


@register
class LayerOrderRule(Rule):
    """A301 — imports must point strictly down the layer ranks."""

    code = "A301"
    name = "layer-order"
    description = (
        "import that points up (or sideways) in the package layering: "
        "util/geodata/netbase below core, core below analysis/cli"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        importer = ctx.package
        importer_rank = LAYER_RANKS.get(importer)
        if importer_rank is None:
            return
        for node, imported in _imported_repro_packages(ctx):
            if imported == importer:
                continue
            imported_rank = LAYER_RANKS.get(imported)
            if imported_rank is None or imported_rank < importer_rank:
                continue
            direction = "sideways" if imported_rank == importer_rank else "up"
            yield ctx.finding(
                self,
                node,
                f"package '{importer}' (rank {importer_rank}) imports "
                f"'{imported}' (rank {imported_rank}): layering points "
                f"{direction}; depend only on lower layers",
            )


@register
class ImportCycleRule(Rule):
    """A302 — no import cycles between the analyzed modules.  Only
    module-level imports participate: a function-local import is the
    sanctioned way to break a would-be cycle."""

    code = "A302"
    name = "import-cycle"
    description = "module-level import cycle among analyzed modules"

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        modules = project.modules
        edges: Dict[str, Dict[str, ast.AST]] = {}
        for module, ctx in modules.items():
            edges[module] = {}
            if ctx.tree is None:
                continue
            for node in ctx.tree.body:
                for target in self._import_targets(ctx, node, modules):
                    if target != module:
                        edges[module].setdefault(target, node)
        for cycle in self._cycles(edges):
            anchor = min(cycle)
            ctx = modules[anchor]
            position = cycle.index(anchor)
            ordered = cycle[position:] + cycle[:position]
            node = edges[anchor][ordered[1]]
            yield ctx.finding(
                self,
                node,
                "import cycle: " + " -> ".join(ordered + [anchor]),
            )

    @staticmethod
    def _import_targets(
        ctx: FileContext, node: ast.AST, modules: Dict[str, FileContext]
    ) -> Iterable[str]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in modules:
                    yield alias.name
        elif isinstance(node, ast.ImportFrom):
            module = _resolve_from_import(ctx, node)
            if module is None:
                return
            if module in modules:
                yield module
            for alias in node.names:
                submodule = f"{module}.{alias.name}"
                if submodule in modules:
                    yield submodule

    @staticmethod
    def _cycles(edges: Dict[str, Dict[str, ast.AST]]) -> List[List[str]]:
        """Strongly connected components of size > 1, via Tarjan."""
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        sccs: List[List[str]] = []

        def strongconnect(node: str) -> None:
            # iterative Tarjan to stay clear of recursion limits on
            # large trees
            work = [(node, iter(sorted(edges.get(node, ()))))]
            index[node] = lowlink[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(edges.get(succ, ())))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[current] = min(lowlink[current], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])
                if lowlink[current] == index[current]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    if len(component) > 1:
                        sccs.append(sorted(component))

        for node in sorted(edges):
            if node not in index:
                strongconnect(node)
        return sccs
