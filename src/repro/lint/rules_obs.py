"""O-rules: observability consistency.

Manifest comparison ("two runs disagree on metric X") only works if X
comes from a closed vocabulary.  :mod:`repro.obs.names` declares that
vocabulary — every metric name with its label set, every span name —
and these rules hold the rest of the tree to it by resolving the name
argument of every instrumentation call site against the catalog,
*statically* (the catalog module's AST is read through the program
model; nothing is imported).

* **O601** — the metric name at an ``inc``/``observe``/``set_gauge`` /
  ``registry.counter``/``gauge``/``histogram``/``sum_counters`` call
  site must resolve to a declared metric.  Dynamic names (variables,
  f-strings) cannot be checked and are flagged too: a name the linter
  cannot see is a name the catalog does not close over.
* **O602** — the label keywords at a metric call site must equal the
  declared label set: every declared label bound, no undeclared ones.
* **O603** — span names at ``*.span(...)`` call sites must match the
  declared span list; a trailing ``*`` in a declared name covers a
  dynamic suffix (``stage:*`` admits ``f"stage:{name}"``).

The rules are quiet when no ``obs.names`` catalog module is part of the
analyzed tree (lint fixtures), and never patrol the ``obs`` package
itself — the implementation of the metrics layer necessarily handles
names as values.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.framework import FileContext, ProjectContext, Rule, register
from repro.lint.program import ModuleInfo, ProgramModel

#: ambient helpers in repro.obs.metrics (name is the first argument)
AMBIENT_METRIC_CALLS = {"inc", "observe", "set_gauge"}

#: registry/duck-typed accessors whose first argument is a metric name
REGISTRY_METRIC_CALLS = {"counter", "gauge", "histogram", "sum_counters"}

#: keyword arguments of metric calls that are values, not labels
NON_LABEL_KWARGS = {"amount", "value"}


def _catalog_module(model: ProgramModel) -> Optional[ModuleInfo]:
    """The ``obs.names`` catalog module of the analyzed tree, if any."""
    for name in sorted(model.modules):
        if name == "repro.obs.names" or name.endswith(".obs.names"):
            return model.modules[name]
    return None


def _parse_catalog(
    model: ProgramModel, catalog: ModuleInfo
) -> Tuple[Dict[str, Tuple[str, ...]], List[str]]:
    """Statically read (metric -> labels, span patterns) from the
    catalog module's AST."""
    metrics: Dict[str, Tuple[str, ...]] = {}
    spans: List[str] = []
    decls = catalog.constant_nodes.get("_METRIC_DECLS")
    value = getattr(decls, "value", None)
    if isinstance(value, ast.Tuple):
        for element in value.elts:
            if not isinstance(element, ast.Tuple) or len(element.elts) < 3:
                continue
            name = model.resolve_string(catalog, element.elts[0])
            labels_node = element.elts[2]
            if name is None or not isinstance(labels_node, ast.Tuple):
                continue
            labels = tuple(
                label.value
                for label in labels_node.elts
                if isinstance(label, ast.Constant)
                and isinstance(label.value, str)
            )
            metrics[name] = labels
    span_decl = catalog.constant_nodes.get("SPAN_NAMES")
    span_value = getattr(span_decl, "value", None)
    if isinstance(span_value, ast.Tuple):
        for element in span_value.elts:
            name = model.resolve_string(catalog, element)
            if name is not None:
                spans.append(name)
    return metrics, spans


def _in_obs_package(module: str) -> bool:
    return "obs" in module.split(".")


def _metric_call_sites(
    info: ModuleInfo,
) -> Iterator[Tuple[ast.Call, str, bool]]:
    """Yield (call, helper name, strict) for metric-flavoured calls.

    ``strict`` means the call provably targets the obs metrics layer
    (``obs_metrics.inc(...)``, ``from repro.obs.metrics import inc``):
    there a dynamic name is itself a violation.  Duck-typed matches —
    ``registry.counter(...)``, or any ``.observe(...)`` on an object the
    analysis cannot type — are reported non-strict, and only checked
    when the name argument is statically resolvable (an unrelated
    ``db.observe(fqdn, ...)`` must not false-positive).

    Module-level and function-level code are both covered (the walk is
    over the whole module AST, not the call graph).
    """
    assert info.ctx.tree is not None
    for node in ast.walk(info.ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr not in AMBIENT_METRIC_CALLS | REGISTRY_METRIC_CALLS:
                continue
            strict = False
            if isinstance(func.value, ast.Name):
                symbol = info.symbols.get(func.value.id)
                strict = (
                    symbol is not None
                    and symbol.kind == "module"
                    and _in_obs_package(symbol.module)
                    and attr in AMBIENT_METRIC_CALLS
                )
            yield node, attr, strict
        elif isinstance(func, ast.Name):
            origin = info.ctx.imported_names.get(func.id, "")
            if (
                func.id in AMBIENT_METRIC_CALLS
                and origin.split(".")[-1] == func.id
                and _in_obs_package(origin)
            ):
                yield node, func.id, True


class _CatalogRule(Rule):
    """Shared driver: resolve the catalog once, then visit call sites."""

    def finalize(self, project: ProjectContext) -> Iterable[Finding]:
        model = project.program_model()
        catalog = _catalog_module(model)
        if catalog is None:
            return
        metrics, spans = _parse_catalog(model, catalog)
        for name in sorted(model.modules):
            if _in_obs_package(name):
                continue
            info = model.modules[name]
            ctx = project.context_for_module(name)
            if ctx is None or info.ctx.tree is None:
                continue
            yield from self._check_module(model, info, ctx, metrics, spans)

    def _check_module(
        self,
        model: ProgramModel,
        info: ModuleInfo,
        ctx: FileContext,
        metrics: Dict[str, Tuple[str, ...]],
        spans: List[str],
    ) -> Iterator[Finding]:
        return iter(())


@register
class MetricNameRule(_CatalogRule):
    """O601 — metric names must be declared in the obs names catalog."""

    code = "O601"
    name = "undeclared-metric-name"
    description = (
        "metric call site whose name is not a declared constant from "
        "the obs.names catalog (or is dynamic and uncheckable)"
    )

    def _check_module(
        self,
        model: ProgramModel,
        info: ModuleInfo,
        ctx: FileContext,
        metrics: Dict[str, Tuple[str, ...]],
        spans: List[str],
    ) -> Iterator[Finding]:
        for call, helper, strict in _metric_call_sites(info):
            if not call.args:
                continue
            name = model.resolve_string(info, call.args[0])
            if name is None:
                if strict:
                    yield ctx.finding(
                        self,
                        call,
                        f"{helper}(...) metric name is dynamic; pass a "
                        "constant declared in the obs names catalog",
                    )
            elif name not in metrics:
                yield ctx.finding(
                    self,
                    call,
                    f"{helper}({name!r}) uses an undeclared metric "
                    "name; declare it in the obs names catalog",
                )


@register
class MetricLabelRule(_CatalogRule):
    """O602 — metric labels must match the declared label set."""

    code = "O602"
    name = "metric-label-mismatch"
    description = (
        "metric call site whose label keywords differ from the label "
        "set declared for that metric in the obs.names catalog"
    )

    def _check_module(
        self,
        model: ProgramModel,
        info: ModuleInfo,
        ctx: FileContext,
        metrics: Dict[str, Tuple[str, ...]],
        spans: List[str],
    ) -> Iterator[Finding]:
        for call, helper, strict in _metric_call_sites(info):
            if helper == "sum_counters":
                # aggregates across label sets by design
                continue
            if not call.args:
                continue
            name = model.resolve_string(info, call.args[0])
            if name is None or name not in metrics:
                continue  # O601 territory
            if any(kw.arg is None for kw in call.keywords):
                continue  # **labels: dynamic, uncheckable
            passed: Set[str] = {
                kw.arg
                for kw in call.keywords
                if kw.arg is not None and (
                    not strict or kw.arg not in NON_LABEL_KWARGS
                )
            }
            declared = set(metrics[name])
            if passed != declared:
                want = ",".join(sorted(declared)) or "<none>"
                got = ",".join(sorted(passed)) or "<none>"
                yield ctx.finding(
                    self,
                    call,
                    f"{helper}({name!r}) labels [{got}] do not match "
                    f"the declared label set [{want}]",
                )


@register
class SpanNameRule(_CatalogRule):
    """O603 — span names must match the declared span list."""

    code = "O603"
    name = "undeclared-span-name"
    description = (
        "span(...) call site whose name (or static f-string prefix) "
        "matches no declared span name in the obs.names catalog"
    )

    @staticmethod
    def _matches(name: str, patterns: List[str], exact: bool) -> bool:
        for pattern in patterns:
            if pattern.endswith("*"):
                if name.startswith(pattern[:-1]):
                    return True
            elif exact and name == pattern:
                return True
        return False

    def _check_module(
        self,
        model: ProgramModel,
        info: ModuleInfo,
        ctx: FileContext,
        metrics: Dict[str, Tuple[str, ...]],
        spans: List[str],
    ) -> Iterator[Finding]:
        assert info.ctx.tree is not None
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr != "span":
                continue
            if not node.args:
                continue
            arg = node.args[0]
            name = model.resolve_string(info, arg)
            if name is not None:
                if not self._matches(name, spans, exact=True):
                    yield ctx.finding(
                        self,
                        node,
                        f"span({name!r}) is not declared in the obs "
                        "names catalog",
                    )
                continue
            prefix = model.static_prefix(arg)
            if prefix is None:
                continue  # not a string expression at all (e.g. a call)
            if not prefix or not self._matches(prefix, spans, exact=False):
                yield ctx.finding(
                    self,
                    node,
                    f"span name with static prefix {prefix!r} matches no "
                    "declared wildcard span pattern in the obs names "
                    "catalog",
                )
