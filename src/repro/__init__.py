"""repro — a full reproduction of "Tracing Cross Border Web Tracking"
(Iordanou, Smaragdakis, Poese, Laoutaris — IMC 2018).

The package implements the paper's measurement pipeline end to end —
two-stage tracking-flow classification, tracker-IP inventory with
passive-DNS completion, active-measurement geolocation, border-crossing
quantification, localization what-ifs, the sensitive-category study and
the ISP-scale NetFlow validation — over a faithful simulated substrate
(web/RTB ecosystem, DNS, geolocation physics, cloud footprints, ISP
NetFlow), since the paper's inputs are proprietary.

Quickstart::

    from repro import Study, WorldConfig

    study = Study(WorldConfig.small())
    print(study.eu28_destination_regions())   # Fig. 7(b) shape

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.config import (
    PANEL_END_DAY,
    PANEL_START_DAY,
    SNAPSHOT_DAYS,
    WorldConfig,
)
from repro.core.classify import (
    ClassificationResult,
    ClassificationStage,
    RequestClassifier,
)
from repro.core.confinement import ConfinementAnalyzer
from repro.core.geolocate import GeolocationSuite
from repro.core.collaboration import CollaborationAnalyzer
from repro.core.ispscale import ISPScaleStudy
from repro.core.regulations import Regulation, RegulationMonitor
from repro.core.localization import LocalizationAnalyzer, LocalizationScenario
from repro.core.pipeline import Study
from repro.core.sensitive import SensitiveStudy
from repro.core.tracker_ips import TrackerIPInventory
from repro.datasets.builder import World, build_world
from repro.errors import ReproError
from repro.geodata.regions import Region

__version__ = "1.0.0"

__all__ = [
    "Study",
    "WorldConfig",
    "World",
    "build_world",
    "Region",
    "ReproError",
    "RequestClassifier",
    "ClassificationResult",
    "ClassificationStage",
    "TrackerIPInventory",
    "GeolocationSuite",
    "ConfinementAnalyzer",
    "LocalizationAnalyzer",
    "LocalizationScenario",
    "SensitiveStudy",
    "ISPScaleStudy",
    "CollaborationAnalyzer",
    "Regulation",
    "RegulationMonitor",
    "PANEL_START_DAY",
    "PANEL_END_DAY",
    "SNAPSHOT_DAYS",
    "__version__",
]
