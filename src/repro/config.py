"""Experiment configuration.

One :class:`WorldConfig` object parameterizes the entire simulated world:
how many organizations and publishers exist, how the panel browses, how
the ISP traffic is synthesized, and the calibration knobs that shape the
reproduction targets (traffic shares per organization archetype,
misgeolocation rates, resolver mix, ...).

Three presets are provided:

* :meth:`WorldConfig.small` — unit/property tests (seconds);
* :meth:`WorldConfig.medium` — the default for benchmarks: large enough
  that every distributional figure is well resolved (~hundreds of
  thousands of third-party requests) while a full pipeline run stays in
  tens of seconds;
* :meth:`WorldConfig.paper_scale` — counts matching the paper's Table 1
  (7M+ third-party requests; minutes of runtime, for offline use).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict

from repro.errors import ConfigError

#: simulation time (days) — panel window, Sept 1 2017 = day 0
PANEL_START_DAY = 0.0
PANEL_END_DAY = 135.0  # mid-January 2018

#: ISP snapshot days used by the paper (Sect. 7.2), days since Sept 1 2017.
SNAPSHOT_DAYS: Dict[str, float] = {
    "Nov 8": 68.0,
    "April 4": 215.0,
    "May 16": 257.0,
    "June 20": 292.0,
}


@dataclass(frozen=True)
class PanelConfig:
    """The browser-extension panel (Sect. 3.1)."""

    n_users: int = 350
    #: users per region, mirroring the paper's recruitment skew
    users_per_region: Dict[str, int] = field(
        default_factory=lambda: {
            "EU28": 183,
            "SA": 86,
            "REST_EU": 23,
            "AF": 22,
            "AS": 20,
            "NA": 16,
        }
    )
    #: EU28 panel countries and their user counts (sums to the EU28 total)
    eu28_user_counts: Dict[str, int] = field(
        default_factory=lambda: {
            "ES": 40, "GB": 30, "DE": 24, "IT": 18, "GR": 14, "PL": 12,
            "RO": 10, "DK": 8, "BE": 8, "CY": 5, "HU": 4, "FR": 4,
            "NL": 2, "SE": 2, "PT": 1, "CZ": 1,
        }
    )
    days: float = PANEL_END_DAY - PANEL_START_DAY
    #: mean site visits per user over the whole window
    visits_per_user: float = 218.0
    #: probability a (desktop) panel user uses a third-party DNS resolver
    public_resolver_share: float = 0.22

    def __post_init__(self) -> None:
        if sum(self.users_per_region.values()) != self.n_users:
            raise ConfigError("users_per_region must sum to n_users")
        if sum(self.eu28_user_counts.values()) != self.users_per_region.get(
            "EU28", 0
        ):
            raise ConfigError("eu28_user_counts must sum to the EU28 total")


@dataclass(frozen=True)
class EcosystemConfig:
    """How many organizations / domains / publishers the world contains."""

    n_hyperscalers: int = 3
    n_ad_exchanges: int = 10
    n_dsps: int = 40
    n_ssps: int = 25
    n_dmps: int = 35
    n_analytics: int = 45
    n_eu_trackers: int = 90
    n_us_trackers: int = 65
    n_resteu_trackers: int = 12
    n_asia_trackers: int = 5
    n_adult_networks: int = 10
    n_clean_orgs: int = 140
    n_publishers: int = 1400
    #: fraction of publishers carrying a GDPR-sensitive topic
    sensitive_publisher_share: float = 0.19
    #: share of tracker IPs allocated from IPv6 pools (paper: <3%)
    ipv6_share: float = 0.025

    def scaled(self, factor: float) -> "EcosystemConfig":
        """Scale all population counts by ``factor`` (min 1 per class)."""
        if factor <= 0:
            raise ConfigError("scale factor must be positive")

        def s(n: int) -> int:
            return max(1, round(n * factor))

        return replace(
            self,
            n_hyperscalers=max(3, s(self.n_hyperscalers)),
            n_ad_exchanges=s(self.n_ad_exchanges),
            n_dsps=s(self.n_dsps),
            n_ssps=s(self.n_ssps),
            n_dmps=s(self.n_dmps),
            n_analytics=s(self.n_analytics),
            n_eu_trackers=s(self.n_eu_trackers),
            n_us_trackers=s(self.n_us_trackers),
            n_resteu_trackers=s(self.n_resteu_trackers),
            n_asia_trackers=s(self.n_asia_trackers),
            n_adult_networks=s(self.n_adult_networks),
            n_clean_orgs=s(self.n_clean_orgs),
            n_publishers=s(self.n_publishers),
        )


@dataclass(frozen=True)
class BrowsingConfig:
    """Per-visit request synthesis (drives Table 1 / Table 2 / Fig. 2)."""

    mean_ad_slots: float = 3.2
    mean_analytics_tags: float = 3.0
    mean_clean_widgets: float = 7.5
    #: mean cookie-sync / chain descendants per ad slot (the list-invisible
    #: tail recovered by the semi-automatic classifier)
    mean_chain_descendants: float = 6.8
    #: mean list-visible requests per ad slot (bid + creative + pixels)
    mean_chain_visible: float = 3.0
    #: mean requests per clean widget
    mean_clean_requests: float = 2.4


@dataclass(frozen=True)
class GeolocationConfig:
    """Accuracy knobs for the geolocation substrate (Sect. 3.4)."""

    #: probability a commercial DB maps an infrastructure IP to the
    #: operator's legal-seat country instead of the true location
    commercial_legal_seat_bias: float = 0.93
    #: probability IP-API agrees with MaxMind on a given infrastructure IP
    ip_api_agreement: float = 0.965
    #: probes participating in one active geolocation campaign
    probes_per_campaign: int = 100
    #: majority threshold for accepting the country vote; the paper
    #: keeps the plurality winner ("the most popular estimation"), i.e. 0
    country_majority: float = 0.0
    #: probe mesh sizing
    n_probes_eu: int = 500
    n_probes_us: int = 120
    n_probes_other: int = 120


@dataclass(frozen=True)
class ISPConfig:
    """NetFlow synthesis for the four ISPs (Sect. 7)."""

    #: sampled tracking flows to synthesize per ISP snapshot, keyed by ISP
    sampled_flows: Dict[str, int] = field(
        default_factory=lambda: {
            "DE-Broadband": 60_000,
            "DE-Mobile": 24_000,
            "PL": 12_000,
            "HU": 16_000,
        }
    )
    #: 1-in-N packet sampling rate of the exporters
    sampling_rate: int = 1000
    #: share of non-web ports among tracking-IP flows (paper: <0.5%)
    non_web_share: float = 0.004
    #: share of port-443 (encrypted) among web flows (paper: >83%)
    https_share: float = 0.834
    #: background (non-tracking) flows to synthesize per snapshot
    background_flows: int = 4_000
    #: probability a broadband subscriber uses a public DNS resolver
    broadband_public_resolver_share: float = 0.38
    #: probability a mobile subscriber uses a public DNS resolver
    mobile_public_resolver_share: float = 0.04

    def scaled(self, factor: float) -> "ISPConfig":
        if factor <= 0:
            raise ConfigError("scale factor must be positive")
        return replace(
            self,
            sampled_flows={
                name: max(200, round(count * factor))
                for name, count in self.sampled_flows.items()
            },
            background_flows=max(100, round(self.background_flows * factor)),
        )


@dataclass(frozen=True)
class WorldConfig:
    """Top-level configuration of one experiment world."""

    seed: int = 20180825
    panel: PanelConfig = field(default_factory=PanelConfig)
    ecosystem: EcosystemConfig = field(default_factory=EcosystemConfig)
    browsing: BrowsingConfig = field(default_factory=BrowsingConfig)
    geolocation: GeolocationConfig = field(default_factory=GeolocationConfig)
    isp: ISPConfig = field(default_factory=ISPConfig)

    def digest(self) -> str:
        """Stable content digest of this configuration.

        Two configs compare equal iff their digests match, so the digest
        can stand in for the config in cache keys and cross-process
        world memoization (see :mod:`repro.runtime`).
        """
        payload = json.dumps(asdict(self), sort_keys=True, default=str)
        h = hashlib.blake2b(digest_size=20)
        h.update(payload.encode("utf-8"))
        return h.hexdigest()

    # -- presets ---------------------------------------------------------
    @classmethod
    def small(cls, seed: int = 7) -> "WorldConfig":
        """Tiny world for unit and property tests."""
        return cls(
            seed=seed,
            panel=PanelConfig(
                n_users=40,
                users_per_region={
                    "EU28": 24, "SA": 6, "REST_EU": 3, "AF": 2, "AS": 3,
                    "NA": 2,
                },
                eu28_user_counts={
                    "ES": 5, "GB": 4, "DE": 4, "IT": 2, "GR": 2, "PL": 2,
                    "RO": 1, "DK": 1, "BE": 1, "CY": 1, "HU": 1,
                },
                visits_per_user=16.0,
            ),
            ecosystem=EcosystemConfig().scaled(0.18),
            isp=ISPConfig().scaled(0.05),
        )

    @classmethod
    def medium(cls, seed: int = 20180825) -> "WorldConfig":
        """Benchmark default: ~hundreds of thousands of requests."""
        return cls(
            seed=seed,
            panel=PanelConfig(visits_per_user=34.0),
            ecosystem=EcosystemConfig().scaled(0.6),
            isp=ISPConfig().scaled(0.35),
        )

    @classmethod
    def paper_scale(cls, seed: int = 20180825) -> "WorldConfig":
        """Counts matching the paper's Table 1 (slow; offline use)."""
        return cls(
            seed=seed,
            panel=PanelConfig(visits_per_user=218.0),
            ecosystem=EcosystemConfig().scaled(4.0),
            isp=ISPConfig(),
        )
