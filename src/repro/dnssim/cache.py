"""TTL-respecting resolver cache and redirection propagation (Sect. 5.1).

The paper's DNS-redirection argument leans on record TTLs: *"google time
to live (TTL) for DNS records is 300 seconds and facebook TTL is 7,200
seconds. Thus, DNS redirection can take place in relatively small time
scale, from seconds to a few hours."*  Two pieces implement that logic:

* :class:`CachingResolver` — a recursive-resolver cache in front of an
  authoritative answer source, honouring per-answer TTLs and reporting
  hit statistics (the mechanism that delays redirections);
* :func:`redirection_propagation` — given the TTL mix of a set of
  tracking FQDNs, the share of clients that would follow a DNS
  redirection within a deadline: exactly the "seconds to a few hours"
  claim, computable per deadline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dnssim.authority import ClientSite, Endpoint, FqdnService
from repro.errors import DNSError, ValidationError


@dataclass
class CacheStats:
    """Hit/miss counters of a caching resolver."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class CachingResolver:
    """A TTL-honouring cache keyed by (FQDN, client country).

    ``now_seconds`` is supplied per query (simulation time), so expiry
    is fully deterministic and testable.
    """

    def __init__(
        self,
        answer: Callable[[str, ClientSite], Tuple[Endpoint, int]],
    ) -> None:
        self._answer = answer
        self._cache: Dict[Tuple[str, str], Tuple[Endpoint, float]] = {}
        self.stats = CacheStats()

    def resolve(
        self, fqdn: str, client: ClientSite, now_seconds: float
    ) -> Endpoint:
        """Resolve through the cache at simulation time ``now_seconds``."""
        key = (fqdn, client.country)
        cached = self._cache.get(key)
        if cached is not None:
            endpoint, expires = cached
            if now_seconds < expires:
                self.stats.hits += 1
                return endpoint
            self.stats.expirations += 1
        self.stats.misses += 1
        endpoint, ttl = self._answer(fqdn, client)
        if ttl < 0:
            raise DNSError(f"negative TTL for {fqdn}")
        self._cache[key] = (endpoint, now_seconds + ttl)
        return endpoint

    def flush(self) -> None:
        self._cache.clear()


def redirection_propagation(
    ttls_seconds: Sequence[int],
    deadline_seconds: float,
) -> float:
    """Share of cached client populations that pick up a DNS redirection
    within ``deadline_seconds``.

    Model: each FQDN's clients refreshed their cached answer uniformly
    at random within the last TTL window, so the share of a given FQDN's
    clients whose cache expires within the deadline is
    ``min(1, deadline / ttl)``; the result averages over the FQDNs.
    """
    if deadline_seconds < 0:
        raise ValidationError("deadline must be non-negative")
    if not ttls_seconds:
        return 0.0
    shares = []
    for ttl in ttls_seconds:
        if ttl < 0:
            raise ValidationError("TTLs must be non-negative")
        shares.append(1.0 if ttl == 0 else min(1.0, deadline_seconds / ttl))
    return sum(shares) / len(shares)


def propagation_profile(
    services: Sequence[FqdnService],
    deadlines_seconds: Sequence[float] = (60, 300, 1800, 7200, 86400),
) -> List[Tuple[float, float]]:
    """(deadline, share-of-clients-redirected) points for a service set.

    Feeding in the tracking FQDNs of a study reproduces the paper's
    "seconds to a few hours" redirection-speed claim quantitatively.
    """
    ttls = [service.ttl for service in services]
    return [
        (deadline, redirection_propagation(ttls, deadline))
        for deadline in deadlines_seconds
    ]
