"""DNS record and answer value types."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import DNSError
from repro.netbase.addr import IPAddress


class RRType(enum.Enum):
    """The record types the simulation uses."""

    A = "A"
    AAAA = "AAAA"
    CNAME = "CNAME"

    @staticmethod
    def for_address(address: IPAddress) -> "RRType":
        return RRType.A if address.version == 4 else RRType.AAAA


@dataclass(frozen=True)
class ResourceRecord:
    """A single DNS resource record (name, type, value, TTL seconds)."""

    name: str
    rtype: RRType
    value: str
    ttl: int

    def __post_init__(self) -> None:
        if self.ttl < 0:
            raise DNSError("TTL must be non-negative")
        if not self.name or self.name != self.name.lower():
            raise DNSError(f"record names must be non-empty lowercase: {self.name!r}")


@dataclass(frozen=True)
class DNSAnswer:
    """The outcome of one recursive resolution.

    ``resolver_country`` records where the recursive resolver that asked
    the authority was located — the location the authority's mapping
    logic actually saw, which differs from the client's country when a
    third-party public resolver was used.
    """

    name: str
    address: IPAddress
    ttl: int
    server_country: str
    resolver_country: str

    @property
    def rtype(self) -> RRType:
        return RRType.for_address(self.address)
