"""Authoritative DNS with geo-aware server selection.

Each organization operates one :class:`Zone` covering its domains.  A
zone maps every FQDN it serves to a :class:`FqdnService`: the set of
server endpoints that can answer for the name plus a
:class:`SelectionPolicy` describing how the authority maps a querying
resolver to one of them.

The selection policies model the strategies that produce the paper's
confinement structure:

* ``NEAREST`` — CDN-style latency mapping: answer with the endpoint
  geographically closest to the querying resolver.  Dense-PoP
  organizations confine EU users within EU28 this way.
* ``HOME`` — always answer from the organization's home deployment,
  wherever the client is (small trackers without a CDN).
* ``WEIGHTED`` — random endpoint weighted by capacity (load balancing
  without geo awareness).
* ``ROUND_ROBIN`` — deterministic rotation over endpoints.

Server endpoints are duck-typed: any object with ``ip`` (an
:class:`~repro.netbase.addr.IPAddress`), ``country`` (ISO2 string) and
``lat`` / ``lon`` floats works; ``repro.web.deployment`` provides the
concrete type.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.errors import DNSError, NXDomainError
from repro.geodata.distance import great_circle_km
from repro.util.rng import fixed_rng
from repro.netbase.addr import IPAddress


class Endpoint(Protocol):
    """Structural type for a server endpoint a zone can answer with."""

    ip: IPAddress
    country: str
    lat: float
    lon: float


@dataclass(frozen=True)
class ClientSite:
    """Where a query (from the authority's point of view) comes from."""

    country: str
    lat: float
    lon: float


class SelectionPolicy(enum.Enum):
    NEAREST = "nearest"
    HOME = "home"
    WEIGHTED = "weighted"
    ROUND_ROBIN = "round_robin"


def _continent_of(iso2: str) -> str:
    """Continent code of a country (unknown codes form their own bucket)."""
    from repro.geodata.countries import default_registry

    country = default_registry().find(iso2)
    return country.continent if country is not None else iso2


@dataclass
class FqdnService:
    """The endpoints and mapping policy behind one FQDN."""

    #: probability a WEIGHTED (load-balanced) answer stays on the
    #: querying resolver's continent when same-continent endpoints
    #: exist: real load balancers keep users on-continent for latency,
    #: but configuration drift leaks a minority of answers overseas.
    GEOFENCE_PROBABILITY = 0.60

    fqdn: str
    endpoints: List[Endpoint]
    policy: SelectionPolicy = SelectionPolicy.NEAREST
    ttl: int = 300
    weights: Optional[List[float]] = None
    _rr_cursor: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not self.endpoints:
            raise DNSError(f"FQDN {self.fqdn} has no endpoints")
        if self.weights is not None and len(self.weights) != len(self.endpoints):
            raise DNSError(f"FQDN {self.fqdn}: weights/endpoints length mismatch")

    def select(
        self, client: ClientSite, rng: Optional[random.Random] = None
    ) -> Endpoint:
        """Pick the endpoint this authority answers with for ``client``."""
        if self.policy is SelectionPolicy.NEAREST:
            return min(
                self.endpoints,
                key=lambda e: (
                    great_circle_km(client.lat, client.lon, e.lat, e.lon),
                    int(e.ip),
                ),
            )
        if self.policy is SelectionPolicy.HOME:
            return self.endpoints[0]
        if self.policy is SelectionPolicy.ROUND_ROBIN:
            endpoint = self.endpoints[self._rr_cursor % len(self.endpoints)]
            self._rr_cursor += 1
            return endpoint
        # WEIGHTED: continent-fenced load balancing.
        if rng is None:
            # Test-convenience default only: every runtime path injects
            # the shard's seeded stream through MappingService.
            rng = fixed_rng()  # reprolint: disable=S703
        candidates: Sequence[Endpoint] = self.endpoints
        candidate_weights = self.weights or [1.0] * len(self.endpoints)
        if rng.random() < self.GEOFENCE_PROBABILITY:
            client_continent = _continent_of(client.country)
            fenced = [
                (endpoint, weight)
                for endpoint, weight in zip(candidates, candidate_weights)
                if _continent_of(endpoint.country) == client_continent
            ]
            if not fenced:
                # No footprint on the client's continent: fence to the
                # continent of the closest endpoint instead (e.g. South
                # American clients ride the North American sites).
                nearest = min(
                    self.endpoints,
                    key=lambda e: great_circle_km(
                        client.lat, client.lon, e.lat, e.lon
                    ),
                )
                nearest_continent = _continent_of(nearest.country)
                fenced = [
                    (endpoint, weight)
                    for endpoint, weight in zip(candidates, candidate_weights)
                    if _continent_of(endpoint.country) == nearest_continent
                ]
            if fenced:
                candidates = [endpoint for endpoint, _ in fenced]
                candidate_weights = [weight for _, weight in fenced]
        total = sum(candidate_weights)
        point = rng.random() * total
        cumulative = 0.0
        for endpoint, weight in zip(candidates, candidate_weights):
            cumulative += weight
            if point <= cumulative:
                return endpoint
        return candidates[-1]

    def countries(self) -> List[str]:
        """Distinct endpoint countries, sorted (used by what-if engines)."""
        return sorted({e.country for e in self.endpoints})


class Zone:
    """An organization's authoritative zone."""

    def __init__(self, apex: str, owner: str) -> None:
        if not apex or apex != apex.lower():
            raise DNSError(f"zone apex must be non-empty lowercase: {apex!r}")
        self.apex = apex
        self.owner = owner
        self._services: Dict[str, FqdnService] = {}

    def __contains__(self, fqdn: str) -> bool:
        return fqdn in self._services

    def __len__(self) -> int:
        return len(self._services)

    def add_service(self, service: FqdnService) -> None:
        name = service.fqdn
        if not (name == self.apex or name.endswith("." + self.apex)):
            raise DNSError(f"{name} is outside zone {self.apex}")
        self._services[name] = service

    def service(self, fqdn: str) -> FqdnService:
        try:
            return self._services[fqdn]
        except KeyError:
            raise NXDomainError(f"{fqdn} not found in zone {self.apex}") from None

    def services(self) -> List[FqdnService]:
        return [self._services[name] for name in sorted(self._services)]

    def answer(
        self, fqdn: str, client: ClientSite, rng: Optional[random.Random] = None
    ) -> Tuple[Endpoint, int]:
        """Authoritative answer: the selected endpoint and the TTL."""
        service = self.service(fqdn)
        return service.select(client, rng), service.ttl


def zone_apex_of(fqdn: str) -> str:
    """Derive the registrable domain (TLD+1) a name belongs to.

    The simulation only generates two-label apexes (``name.tld``), so the
    apex is simply the last two labels.
    """
    labels = fqdn.split(".")
    if len(labels) < 2 or not all(labels):
        raise DNSError(f"cannot derive zone apex of {fqdn!r}")
    return ".".join(labels[-2:])


class AuthorityDirectory:
    """All authoritative zones of the simulated world, indexed by apex."""

    def __init__(self, zones: Iterable[Zone] = ()) -> None:
        self._zones: Dict[str, Zone] = {}
        for zone in zones:
            self.add(zone)

    def __len__(self) -> int:
        return len(self._zones)

    def add(self, zone: Zone) -> None:
        if zone.apex in self._zones:
            raise DNSError(f"duplicate zone {zone.apex}")
        self._zones[zone.apex] = zone

    def zone_for(self, fqdn: str) -> Zone:
        apex = zone_apex_of(fqdn)
        zone = self._zones.get(apex)
        if zone is None:
            raise NXDomainError(f"no authority for {fqdn} (apex {apex})")
        return zone

    def zones(self) -> List[Zone]:
        return [self._zones[apex] for apex in sorted(self._zones)]

    def all_services(self) -> List[FqdnService]:
        out: List[FqdnService] = []
        for zone in self.zones():
            out.extend(zone.services())
        return out

    def services_under_tld1(self, apex: str) -> List[FqdnService]:
        """All services in the zone of a registrable domain, if known."""
        zone = self._zones.get(apex)
        return zone.services() if zone is not None else []
