"""Passive-DNS replication database (the Robtex substitute, Sect. 3.3).

The database ingests (name, address, timestamp) observations from
production resolvers and maintains, per (name, address) pair, the first
and last time the association was seen.  It answers the two queries the
paper's completeness step needs:

* **forward**: all addresses ever associated with a name (optionally
  restricted to a time window) — used to find tracker IPs the panel
  users never received;
* **reverse**: all names ever served by an address — used to check
  whether a tracking IP is dedicated to tracking or shared with other
  services (Fig. 4 / Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import DNSError
from repro.netbase.addr import IPAddress
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names


@dataclass(frozen=True)
class PassiveRecord:
    """An aggregated (name, address) association with its active window."""

    name: str
    address: IPAddress
    first_seen: float
    last_seen: float
    observations: int

    def active_during(self, start: float, end: float) -> bool:
        """True when the association window overlaps ``[start, end]``."""
        if end < start:
            raise DNSError("window end precedes start")
        return self.first_seen <= end and self.last_seen >= start

    def active_at(self, at: float) -> bool:
        return self.first_seen <= at <= self.last_seen


class PassiveDNSDatabase:
    """Time-windowed forward and reverse DNS association store."""

    def __init__(self, name: str = "pdns") -> None:
        self.name = name
        self._pairs: Dict[Tuple[str, IPAddress], List[float]] = {}
        # _pairs maps pair -> [first_seen, last_seen, count]
        self._forward: Dict[str, Set[IPAddress]] = {}
        self._reverse: Dict[IPAddress, Set[str]] = {}

    def __len__(self) -> int:
        return len(self._pairs)

    # -- ingestion -----------------------------------------------------
    def observe(self, fqdn: str, address: IPAddress, at: float) -> None:
        """Record one resolution of ``fqdn`` to ``address`` at time ``at``."""
        if not fqdn:
            raise DNSError("cannot observe an empty name")
        obs_metrics.inc(obs_names.PDNS_OBSERVATIONS)
        key = (fqdn, address)
        entry = self._pairs.get(key)
        if entry is None:
            obs_metrics.inc(obs_names.PDNS_PAIRS_NEW)
            self._pairs[key] = [at, at, 1]
            self._forward.setdefault(fqdn, set()).add(address)
            self._reverse.setdefault(address, set()).add(fqdn)
        else:
            entry[0] = min(entry[0], at)
            entry[1] = max(entry[1], at)
            entry[2] += 1

    def merge(self, other: "PassiveDNSDatabase") -> None:
        """Fold another collector's observations into this database."""
        for (fqdn, address), (first, last, count) in other._pairs.items():
            key = (fqdn, address)
            entry = self._pairs.get(key)
            if entry is None:
                self._pairs[key] = [first, last, count]
                self._forward.setdefault(fqdn, set()).add(address)
                self._reverse.setdefault(address, set()).add(fqdn)
            else:
                entry[0] = min(entry[0], first)
                entry[1] = max(entry[1], last)
                entry[2] += count

    def pairs(self) -> List[Tuple[str, IPAddress, float, float, int]]:
        """Export all observations as sorted (name, addr, first, last, count).

        The sorted tuple form is picklable and order-canonical, which
        makes it the exchange format for runtime shards: a worker ships
        its local collector back as pairs and the merge folds them with
        :meth:`observe_pairs` — commutative min/max/sum, so the result
        is independent of merge order.
        """
        return sorted(
            (fqdn, address, entry[0], entry[1], entry[2])
            for (fqdn, address), entry in self._pairs.items()
        )

    def observe_pairs(
        self, pairs: List[Tuple[str, IPAddress, float, float, int]]
    ) -> None:
        """Fold exported :meth:`pairs` tuples into this database."""
        obs_metrics.inc(obs_names.PDNS_PAIRS_FOLDED, len(pairs))
        for fqdn, address, first, last, count in pairs:
            if not fqdn:
                raise DNSError("cannot observe an empty name")
            key = (fqdn, address)
            entry = self._pairs.get(key)
            if entry is None:
                self._pairs[key] = [first, last, count]
                self._forward.setdefault(fqdn, set()).add(address)
                self._reverse.setdefault(address, set()).add(fqdn)
            else:
                entry[0] = min(entry[0], first)
                entry[1] = max(entry[1], last)
                entry[2] += count

    # -- queries ---------------------------------------------------------
    def record(self, fqdn: str, address: IPAddress) -> Optional[PassiveRecord]:
        entry = self._pairs.get((fqdn, address))
        if entry is None:
            return None
        return PassiveRecord(fqdn, address, entry[0], entry[1], entry[2])

    def forward(
        self,
        fqdn: str,
        window: Optional[Tuple[float, float]] = None,
    ) -> List[PassiveRecord]:
        """All addresses associated with ``fqdn`` (within ``window``)."""
        out = []
        for address in sorted(self._forward.get(fqdn, ())):  # pragma: no branch
            record = self.record(fqdn, address)
            assert record is not None
            if window is None or record.active_during(*window):
                out.append(record)
        return sorted(out, key=lambda r: (r.address, r.first_seen))

    def reverse(
        self,
        address: IPAddress,
        window: Optional[Tuple[float, float]] = None,
    ) -> List[PassiveRecord]:
        """All names served by ``address`` (within ``window``)."""
        out = []
        for fqdn in sorted(self._reverse.get(address, ())):  # pragma: no branch
            record = self.record(fqdn, address)
            assert record is not None
            if window is None or record.active_during(*window):
                out.append(record)
        return sorted(out, key=lambda r: (r.name, r.first_seen))

    def names(self) -> Iterator[str]:
        return iter(sorted(self._forward))

    def addresses(self) -> Iterator[IPAddress]:
        return iter(sorted(self._reverse))

    def domains_behind(
        self,
        address: IPAddress,
        window: Optional[Tuple[float, float]] = None,
    ) -> Set[str]:
        """Distinct registrable domains (TLD+1) served by ``address``."""
        from repro.dnssim.authority import zone_apex_of

        return {
            zone_apex_of(record.name)
            for record in self.reverse(address, window)
        }
