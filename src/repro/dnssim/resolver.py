"""Recursive-resolver simulation.

Two resolver models matter for the paper's findings (Sect. 7.3, "the
effect of provider type"):

* **ISP resolvers** sit inside the client's access network, so the
  authority sees a query from the client's own country and CDN-style
  nearest-PoP mapping lands on in-country servers when they exist.
* **Third-party public resolvers** (Google DNS, Quad9, ...) answer from
  a sparse set of resolver sites.  Without EDNS-Client-Subnet the
  authority only sees the resolver site's location, which is frequently
  in a *neighbouring* country — this depresses national confinement for
  broadband users who increasingly use such resolvers.

Every successful resolution is reported to the attached passive-DNS
collectors with a timestamp, which is what makes the pDNS database
complete relative to what any single vantage point observed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.errors import DNSError
from repro.dnssim.authority import AuthorityDirectory, ClientSite
from repro.dnssim.records import DNSAnswer
from repro.dnssim.passive import PassiveDNSDatabase
from repro.geodata.distance import great_circle_km
from repro.util.rng import fixed_rng


@dataclass(frozen=True)
class PublicResolver:
    """A third-party open resolver with a set of anycast sites."""

    name: str
    sites: Sequence[ClientSite]

    def __post_init__(self) -> None:
        if not self.sites:
            raise DNSError(f"public resolver {self.name} has no sites")

    def site_for(self, client: ClientSite) -> ClientSite:
        """The resolver site a client's queries are anycast-routed to."""
        return min(
            self.sites,
            key=lambda s: (
                great_circle_km(client.lat, client.lon, s.lat, s.lon),
                s.country,
            ),
        )


class RecursiveResolver:
    """Resolves names against the authority directory for a client.

    Parameters
    ----------
    authorities:
        The world's authoritative zones.
    collectors:
        Passive-DNS databases that observe every resolution.
    public_resolver:
        When set, queries are laundered through the nearest site of this
        public resolver (the authority sees the site, not the client).
    """

    def __init__(
        self,
        authorities: AuthorityDirectory,
        collectors: Iterable[PassiveDNSDatabase] = (),
        public_resolver: Optional[PublicResolver] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._authorities = authorities
        self._collectors: List[PassiveDNSDatabase] = list(collectors)
        self._public_resolver = public_resolver
        # Test-convenience default only: every runtime path injects the
        # shard's seeded stream through MappingService.
        self._rng = rng or fixed_rng()  # reprolint: disable=S703

    def attach_collector(self, collector: PassiveDNSDatabase) -> None:
        self._collectors.append(collector)

    def resolve(self, fqdn: str, client: ClientSite, at: float) -> DNSAnswer:
        """Resolve ``fqdn`` for ``client`` at simulation time ``at`` (days).

        Raises :class:`~repro.errors.NXDomainError` when no authority
        knows the name.
        """
        vantage = client
        if self._public_resolver is not None:
            vantage = self._public_resolver.site_for(client)
        zone = self._authorities.zone_for(fqdn)
        endpoint, ttl = zone.answer(fqdn, vantage, self._rng)
        for collector in self._collectors:
            collector.observe(fqdn, endpoint.ip, at)
        return DNSAnswer(
            name=fqdn,
            address=endpoint.ip,
            ttl=ttl,
            server_country=endpoint.country,
            resolver_country=vantage.country,
        )


def default_public_resolvers() -> List[PublicResolver]:
    """The public resolver deployments of the simulated world.

    Site placement mirrors the real sparse-in-the-east footprint that
    drives the broadband-confinement effect: plenty of sites in western
    Europe and the US, none in PL/HU/GR/CY.
    """
    return [
        PublicResolver(
            name="quad-google",
            sites=(
                ClientSite("US", 37.39, -122.08),
                ClientSite("NL", 52.37, 4.90),
                ClientSite("DE", 50.11, 8.68),
                ClientSite("GB", 51.51, -0.13),
                ClientSite("SG", 1.35, 103.82),
            ),
        ),
        PublicResolver(
            name="quad-nine",
            sites=(
                ClientSite("CH", 47.37, 8.54),
                ClientSite("US", 40.71, -74.01),
                ClientSite("NL", 52.37, 4.90),
            ),
        ),
        PublicResolver(
            name="level-three",
            sites=(
                ClientSite("US", 39.74, -104.99),
                ClientSite("GB", 51.51, -0.13),
                ClientSite("FR", 48.86, 2.35),
            ),
        ),
    ]
