"""DNS simulation substrate: authoritative zones with geo-aware server
selection, a recursive-resolver model (including the third-party public
resolver effect), and a passive-DNS replication database (the paper's
Robtex substitute, Sect. 3.3)."""

from repro.dnssim.records import DNSAnswer, ResourceRecord, RRType
from repro.dnssim.authority import (
    AuthorityDirectory,
    ClientSite,
    FqdnService,
    SelectionPolicy,
    Zone,
)
from repro.dnssim.resolver import PublicResolver, RecursiveResolver
from repro.dnssim.passive import PassiveDNSDatabase, PassiveRecord
from repro.dnssim.cache import (
    CacheStats,
    CachingResolver,
    propagation_profile,
    redirection_propagation,
)

__all__ = [
    "RRType",
    "ResourceRecord",
    "DNSAnswer",
    "Zone",
    "FqdnService",
    "SelectionPolicy",
    "ClientSite",
    "AuthorityDirectory",
    "RecursiveResolver",
    "PublicResolver",
    "PassiveDNSDatabase",
    "PassiveRecord",
    "CachingResolver",
    "CacheStats",
    "redirection_propagation",
    "propagation_profile",
]
