"""Manifest assembly: turning a finished run into provenance.

The obs layer (:mod:`repro.obs.manifest`) defines *what* a manifest is;
this module knows *how to fill one in* from a live
:class:`~repro.runtime.engine.RunResult` — it is the only place where
the stage graph, the cache salts, the seed-derivation scheme and the
merged metrics registry meet.

Seed lineage deserves a note: the runtime never draws from the world's
root RNG directly.  Every random decision flows through named streams
derived with :func:`repro.util.rng.derive_seed` — ``runtime:ipmap``,
``runtime:ipmap-campaign``, ``runtime:sensitive`` and the per-shard
``runtime:<shard_key>`` streams — so the manifest can list the exact
child seeds a run consumed, making "which randomness produced this
number?" answerable after the fact.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.obs.ledger import LEDGER_SCHEMA
from repro.obs.manifest import MANIFEST_SCHEMA
from repro.obs.profile import report_gauges
from repro.util.rng import derive_seed

#: the fixed runtime-level derivation streams (per-shard streams are
#: appended per run, keyed on the planned shard keys)
_FIXED_STREAMS = ("runtime:ipmap", "runtime:ipmap-campaign", "runtime:sensitive")


def seed_lineage(seed: int, shard_keys: List[str]) -> Dict[str, Any]:
    """Every derived child seed a run can draw from, by stream name."""
    streams: Dict[str, int] = {
        name: derive_seed(seed, name) for name in _FIXED_STREAMS
    }
    for shard_key in sorted(set(shard_keys)):
        name = f"runtime:{shard_key}"
        streams[name] = derive_seed(seed, name)
    return {"seed": seed, "streams": streams}


def build_manifest(
    result: Any,
    digest: str,
    salts: Dict[str, str],
    footprints: Optional[Mapping[str, Any]] = None,
    lineages: Optional[Mapping[str, Any]] = None,
    costs: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a v1 manifest from a finished :class:`RunResult`.

    ``result`` carries the merged registry, the tracer and the per-stage
    :class:`StageMetrics`; ``digest``/``salts`` are the cache identity
    the run executed under.  ``footprints`` optionally maps stage names
    to :class:`~repro.lint.program.Footprint` records; when present the
    manifest gains a ``footprints`` section recording which modules each
    stage's salt covered.  ``lineages`` optionally maps stage names to
    the dataflow engine's RNG lineage trees
    (:func:`repro.runtime.footprint.stage_lineages`); when present the
    manifest gains an ``rng_lineage`` section whose per-stage digests
    move exactly when a stage's seed-derivation structure changes.
    ``costs`` optionally maps stage names to static cost footprints
    (:func:`repro.runtime.footprint.stage_costs`); when present the
    manifest gains a ``cost_footprint`` section whose per-stage digests
    move exactly when the loop structure or hazard set on the stage's
    run path changes.  Profiled runs (``result.profile_report()`` not
    ``None``) gain a ``profiles`` section: the per-stage hot-function
    report of :func:`repro.obs.profile.build_report`.  The v1 schema is
    open, so manifests without any of these sections stay valid.
    The output validates against
    :func:`repro.obs.manifest.validate_manifest` by construction.
    """
    stages: List[Dict[str, Any]] = []
    all_shard_keys: List[str] = []
    for metrics in result.metrics.values():
        all_shard_keys.extend(metrics.shard_keys)
        stages.append({
            "stage": metrics.name,
            "shards": metrics.n_shards,
            "shard_keys": list(metrics.shard_keys),
            "cache_hits": metrics.cache_hits,
            "cache_misses": metrics.cache_misses,
            "wall_s": round(metrics.wall_s, 6),
            "records_in": dict(metrics.records_in),
            "records_out": dict(metrics.records_out),
        })
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "config": {
            "digest": digest,
            "seed": result.config.seed,
            "preset_sizes": {
                "users": result.config.panel.n_users,
                "publishers": result.config.ecosystem.n_publishers,
            },
        },
        "workers": result.workers,
        "salts": dict(salts),
        "stages": stages,
        "metrics": result.registry.to_dict(),
        "spans": result.tracer.rows(),
        "seed_lineage": seed_lineage(result.config.seed, all_shard_keys),
    }
    if footprints:
        manifest["footprints"] = {
            name: {
                "salt": fp.salt,
                "stage_modules": list(fp.stage_modules),
                "modules": list(fp.modules),
                "exempted": list(fp.exempted),
            }
            for name, fp in sorted(footprints.items())
        }
    if lineages:
        manifest["rng_lineage"] = {
            name: {
                "digest": tree["digest"],
                "root": tree["root"],
                "streams": [dict(entry) for entry in tree["streams"]],
            }
            for name, tree in sorted(lineages.items())
        }
    if costs:
        manifest["cost_footprint"] = {
            name: {
                "digest": cost["digest"],
                "nesting": cost["nesting"],
                "nesting_class": cost["nesting_class"],
                "hazards": cost["hazards"],
                "functions": {
                    label: dict(entry)
                    for label, entry in sorted(cost["functions"].items())
                },
            }
            for name, cost in sorted(costs.items())
        }
    report = result.profile_report()
    if report is not None:
        manifest["profiles"] = report
    return manifest


def build_ledger_record(
    result: Any,
    digest: str,
    salts: Dict[str, str],
    footprints: Optional[Mapping[str, Any]] = None,
    lineages: Optional[Mapping[str, Any]] = None,
    costs: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a run-kind ledger record from a finished run.

    Where the manifest is the *full* audit document of one run (spans,
    shard keys, seed lineage), the ledger record is the *comparable*
    subset that must line up across months of runs: config digest,
    effective salts, footprint salts, the registry snapshot, and
    per-stage timings / cache counts / metric ownership.  Profiled runs
    additionally fold ``profile.self_s{func=...,stage=...}`` gauges
    (:func:`repro.obs.profile.report_gauges`) into the record's metric
    map — into the *record*, never the live registry, so the merged
    registry stays worker-count-invariant — which is what lets
    ``repro obs diff`` and ``repro obs check`` track hot-function
    movement across runs.  Identity fields (``seq``/``run_id``) are
    stamped by :func:`repro.obs.ledger.append_record` at append time.
    """
    stages: List[Dict[str, Any]] = []
    for metrics in result.metrics.values():
        stages.append({
            "stage": metrics.name,
            "shards": metrics.n_shards,
            "cache_hits": metrics.cache_hits,
            "cache_misses": metrics.cache_misses,
            "wall_s": round(metrics.wall_s, 6),
            "cpu_s": round(metrics.cpu_s, 6),
            "metric_keys": list(metrics.metric_keys),
        })
    record: Dict[str, Any] = {
        "schema": LEDGER_SCHEMA,
        "kind": "run",
        "config": {"digest": digest, "seed": result.config.seed},
        "workers": result.workers,
        "salts": dict(salts),
        "stages": stages,
        "metrics": result.registry.to_dict(),
        "world_build_s": round(result.world_build_s, 6),
    }
    if footprints:
        record["footprints"] = {
            name: fp.salt for name, fp in sorted(footprints.items())
        }
    if lineages:
        record["rng_lineage"] = {
            name: tree["digest"] for name, tree in sorted(lineages.items())
        }
    if costs:
        record["cost_footprint"] = {
            name: cost["digest"] for name, cost in sorted(costs.items())
        }
    report = result.profile_report()
    if report is not None:
        record["metrics"].update(report_gauges(report))
        record["profile_hz"] = report["hz"]
    return record
