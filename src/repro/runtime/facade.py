"""High-level runtime entry point.

:func:`run_study` executes the stage graph for a config and wraps the
engine's products in a :class:`RuntimeRun` — headline accessors for the
paper's tables and figures, per-stage metrics, and a :meth:`~RuntimeRun.study`
hydrator that seeds a classic :class:`repro.core.pipeline.Study` with
the engine's stage products so every existing table/figure/export
consumer works unchanged on engine (or cache-replayed) results.

Observability surfaces here too: pass a :class:`repro.obs.Tracer` to
:func:`run_study` and read back :meth:`RuntimeRun.trace_report` (the
text flamegraph), :attr:`RuntimeRun.registry` (the merged, worker-count
-invariant metrics) and :attr:`RuntimeRun.manifest` (the provenance
manifest the engine assembled).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import WorldConfig
from repro.core.classify import ClassificationResult, StageStats
from repro.core.geolocate import GeolocationSuite
from repro.core.localization import LocalizationScenario, ScenarioOutcome
from repro.core.pipeline import Study
from repro.datasets.builder import cached_build_world
from repro.errors import ExecutionError
from repro.geodata.regions import Region
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import CallbackTracer, Span, Tracer
from repro.runtime.engine import ExecutionEngine, RunResult
from repro.runtime.stages import GeoTableLocator
from repro.web.browser import VisitLog

#: the stages whose products the default run materializes (all of them)
ALL_TARGETS: Tuple[str, ...] = ()


def run_study(
    config: Optional[WorldConfig] = None,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    targets: Sequence[str] = ALL_TARGETS,
    tracer: Optional[Tracer] = None,
    progress: Optional[Callable[[str, Span], None]] = None,
    profile_hz: Optional[float] = None,
) -> "RuntimeRun":
    """Run the pipeline through the engine and wrap the results.

    ``config`` defaults to the medium preset; ``workers`` selects the
    shard fan-out (1 = inline); ``cache_dir`` enables the on-disk
    artifact cache; ``targets`` restricts execution to a sub-graph;
    ``tracer`` (optional) receives the engine's span tree — omit it for
    a zero-overhead untraced run with identical study products.
    ``profile_hz`` (optional) turns on per-shard stack sampling at that
    rate — read back :meth:`RuntimeRun.profile_report` /
    :meth:`RuntimeRun.merged_profile`.

    ``progress`` (optional) is the live-events hook the ``repro serve``
    SSE stream rides on: a callable invoked as ``progress(phase, span)``
    with ``phase`` in ``("start", "end")`` for every span the engine
    opens, on the engine's thread.  When set and no ``tracer`` is given,
    the run is traced through a :class:`repro.obs.CallbackTracer`, so
    :meth:`RuntimeRun.trace_report` works too; a caller that needs both
    a custom tracer and live callbacks should pass a
    :class:`~repro.obs.CallbackTracer` as ``tracer`` directly.
    """
    config = config or WorldConfig.medium()
    if tracer is None and progress is not None:
        tracer = CallbackTracer(progress)
    engine = ExecutionEngine(
        workers=workers, cache_dir=cache_dir, profile_hz=profile_hz
    )
    result = engine.run(config, targets, tracer=tracer)
    return RuntimeRun(result=result)


def _stats_counts(stats: StageStats) -> Dict[str, int]:
    """Collapse a :class:`StageStats` into its four headline counts."""
    return {
        "fqdns": len(stats.fqdns),
        "tlds": len(stats.tlds),
        "unique_urls": len(stats.unique_urls),
        "total_requests": stats.total_requests,
    }


@dataclass
class RuntimeRun:
    """One engine run's products with paper-facing accessors."""

    result: RunResult
    _study: Optional[Study] = None

    @property
    def config(self) -> WorldConfig:
        """The :class:`WorldConfig` this run executed."""
        return self.result.config

    @property
    def products(self) -> Dict[str, Any]:
        """Merged stage products, keyed by stage name."""
        return self.result.products

    def _product(self, stage: str) -> Any:
        """One stage's merged product, or raise if it was not run."""
        if stage not in self.products:
            raise ExecutionError(
                f"stage {stage!r} was not part of this run; "
                f"available: {sorted(self.products)}"
            )
        return self.products[stage]

    # -- headline accessors (engine products, no Study needed) ----------
    def classification(self) -> ClassificationResult:
        """The three-pass classification result over the panel's requests."""
        return ClassificationResult(
            requests=self._product("panel")["requests"],
            stages=self._product("classification")["stages"],
        )

    def table2_counts(self) -> Dict[str, Dict[str, int]]:
        """Table 2's classification aggregates as plain counts."""
        classification = self.classification()
        return {
            "list": _stats_counts(classification.list_stats()),
            "semi_automatic": _stats_counts(
                classification.semi_automatic_stats()
            ),
            "total": _stats_counts(classification.total_stats()),
        }

    def eu28_destination_regions(
        self, tool: str = "RIPE IPmap"
    ) -> Dict[str, float]:
        """Fig. 7: destination-region shares of EU28 tracking flows."""
        sankey = self._product("confinement")["eu28"].get(tool)
        if sankey is None:
            raise ExecutionError(f"no confinement view for tool {tool!r}")
        return sankey.origin_shares(Region.EU28.value)

    def scenario_table(self) -> List[ScenarioOutcome]:
        """Table 5 rows from the localization stage's merged counts."""
        counts = self._product("localization")["counts"]
        rows = []
        for scenario in (
            LocalizationScenario.DEFAULT,
            LocalizationScenario.REDIRECT_FQDN,
            LocalizationScenario.REDIRECT_TLD,
            LocalizationScenario.POP_MIRRORING,
            LocalizationScenario.REDIRECT_TLD_PLUS_MIRRORING,
        ):
            n, country_ok, region_ok = counts[scenario.name]
            rows.append(
                ScenarioOutcome(
                    scenario=scenario,
                    n_flows=n,
                    country_pct=100.0 * country_ok / n if n else 0.0,
                    region_pct=100.0 * region_ok / n if n else 0.0,
                )
            )
        return rows

    def sensitive_summary(self) -> Dict[str, Any]:
        """Sect. 6 headline numbers from the sensitive stage counts."""
        product = self._product("sensitive")
        n_tracking = product["n_tracking"]
        n_sensitive = product["n_sensitive"]
        total = sum(product["categories"].values())
        return {
            "n_identified_domains": len(product["identified"]),
            "sensitive_share_pct": (
                100.0 * n_sensitive / n_tracking if n_tracking else 0.0
            ),
            "category_shares": {
                category: 100.0 * count / total
                for category, count in sorted(product["categories"].items())
            } if total else {},
            "per_country_leakage": dict(sorted(product["leakage"].items())),
        }

    def isp_reports(self) -> Dict[Tuple[str, str], Any]:
        """Table 8 grid: (ISP, snapshot) → :class:`SnapshotReport`."""
        return dict(self._product("ispscale"))

    # -- metrics, tracing and provenance --------------------------------
    def metrics_report(self) -> str:
        """Fixed-width per-stage counter table for terminal output."""
        return self.result.metrics_report()

    def metrics_rows(self) -> List[Dict[str, Any]]:
        """Per-stage counters as plain rows (for reports and JSON export)."""
        return self.result.metrics_rows()

    def trace_report(self) -> str:
        """The run's text flamegraph (``(tracing disabled)`` untraced)."""
        return self.result.trace_report()

    @property
    def profiles(self) -> Dict[str, Any]:
        """Per-stage :class:`~repro.obs.Profile` records (empty when
        the run neither sampled nor replayed profiles)."""
        return self.result.profiles

    def merged_profile(self) -> Any:
        """All stage profiles folded into one
        :class:`~repro.obs.Profile`."""
        return self.result.merged_profile()

    def profile_report(self) -> Optional[Dict[str, Any]]:
        """The per-stage hot-function report
        (:data:`~repro.obs.PROFILE_REPORT_SCHEMA`), or ``None``."""
        return self.result.profile_report()

    @property
    def registry(self) -> MetricsRegistry:
        """The merged metrics registry — identical for any worker count."""
        return self.result.registry

    @property
    def manifest(self) -> Optional[Dict[str, Any]]:
        """The provenance manifest the engine assembled for this run."""
        return self.result.manifest

    @property
    def ledger_record(self) -> Optional[Dict[str, Any]]:
        """The run-ledger record this run appended (None without a
        cache dir); ``ledger_record["run_id"]`` is the handle
        ``repro obs diff`` / ``show`` resolve."""
        return self.result.ledger_record

    @property
    def cache_hits(self) -> int:
        """Run-total cache hits (registry-aggregated, see
        :attr:`RunResult.cache_hits`)."""
        return self.result.cache_hits

    @property
    def cache_misses(self) -> int:
        """Run-total cache misses (registry-aggregated)."""
        return self.result.cache_misses

    # -- Study hydration ------------------------------------------------
    def study(self) -> Study:
        """A classic :class:`Study` seeded with this run's products.

        The geolocation suite is rebuilt around the persisted address →
        country table (live-engine fallback for addresses outside it),
        so tables and figures derived from the hydrated study agree
        with the engine's own products.
        """
        if self._study is not None:
            return self._study
        world = cached_build_world(self.config)
        products = self.products

        visit_log = None
        if "panel" in products:
            visit_log = VisitLog(
                visits=products["panel"]["visits"],
                requests=products["panel"]["requests"],
            )
        classification = None
        if "panel" in products and "classification" in products:
            classification = self.classification()
        geolocation = None
        if "geolocation" in products:
            geolocation = GeolocationSuite(
                ipmap=GeoTableLocator(world, products["geolocation"]["table"]),  # type: ignore[arg-type]
                maxmind=world.maxmind,
                ip_api=world.ip_api,
                oracle=world.oracle,
            )
        sensitive = None
        if "sensitive_domains" in products:
            from repro.core.sensitive import SensitiveStudy

            sensitive = SensitiveStudy.from_identified(
                world.publishers,
                products["sensitive_domains"]["identified"],
                registry=world.registry,
            )
        self._study = Study.from_products(
            world,
            visit_log=visit_log,
            classification=classification,
            inventory=products.get("inventory"),
            geolocation=geolocation,
            sensitive=sensitive,
        )
        return self._study
