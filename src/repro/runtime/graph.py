"""Declarative stage graph for the runtime engine.

A :class:`StageSpec` describes one pipeline stage: what it consumes,
what it produces, and along which axis its work splits into independent
shards.  A :class:`StageGraph` is a validated collection of specs with
a deterministic topological order.

The graph is *declarative*: specs carry callables (``plan``, ``run``,
``merge``) but the graph itself never executes anything.  Execution
belongs to :mod:`repro.runtime.executor` and orchestration to
:mod:`repro.runtime.engine`.

Sharding contract
-----------------

``plan(world, products) -> [(shard_key, payload), ...]`` returns the
shard list in canonical order.  The partition must be a pure function
of the world and of upstream products — never of the worker count —
so that a run with one worker and a run with eight produce identical
shard sets, identical per-shard RNG derivations, and therefore
identical merged results.

``run(world, products, shard_key, payload) -> shard_product`` executes
one shard.  It must treat the world as **read-only**: no drawing from
shared world RNG streams, no observing into ``world.pdns``.  Any
randomness comes from streams derived from the shard key.

``merge(world, products, [(shard_key, shard_product), ...]) -> product``
folds shard products *in canonical shard order* into the stage product.
"""

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

from repro.columnar.chunks import cohort_bounds
from repro.errors import ValidationError

PlanFn = Callable[[Any, Mapping[str, Any]], List[Tuple[str, Any]]]
RunFn = Callable[[Any, Mapping[str, Any], str, Any], Any]
MergeFn = Callable[[Any, Mapping[str, Any], List[Tuple[str, Any]]], Any]


class ShardAxis(Enum):
    """The axis along which a stage's work splits into shards."""

    USERS = "users"
    TRACKER_DOMAINS = "tracker-domains"
    IPS = "ips"
    FLOWS = "flows"
    ISPS = "isps"
    NONE = "none"


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage as a declarative node.

    ``inputs`` names upstream stages whose products this stage reads;
    ``outputs`` documents the keys of the product mapping the stage
    emits.  ``version`` is a manual salt folded into the cache key so
    that semantic changes invisible to ``inspect.getsource`` (e.g. a
    data file) can still invalidate cached artifacts.
    """

    name: str
    axis: ShardAxis
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    plan: PlanFn
    run: RunFn
    merge: MergeFn
    version: str = "1"


@dataclass
class StageGraph:
    """A validated DAG of :class:`StageSpec` nodes."""

    _specs: Dict[str, StageSpec] = field(default_factory=dict)

    def add(self, spec: StageSpec) -> None:
        if spec.name in self._specs:
            raise ValidationError(f"duplicate stage {spec.name!r}")
        for dep in spec.inputs:
            if dep not in self._specs:
                raise ValidationError(
                    f"stage {spec.name!r} depends on unknown stage {dep!r}; "
                    "add stages in dependency order"
                )
        self._specs[spec.name] = spec

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __getitem__(self, name: str) -> StageSpec:
        if name not in self._specs:
            raise ValidationError(f"unknown stage {name!r}")
        return self._specs[name]

    @property
    def stages(self) -> Tuple[StageSpec, ...]:
        """All stages in insertion (= topological) order."""
        return tuple(self._specs.values())

    def topological_order(self, targets: Sequence[str] = ()) -> Tuple[str, ...]:
        """Stages needed to produce ``targets`` (all stages if empty).

        Insertion order is already topological because :meth:`add`
        rejects forward references; this filters it down to the
        requested targets and their transitive dependencies.
        """
        if not targets:
            return tuple(self._specs)
        needed = set()
        frontier = list(targets)
        while frontier:
            name = frontier.pop()
            if name in needed:
                continue
            spec = self[name]
            needed.add(name)
            frontier.extend(spec.inputs)
        return tuple(name for name in self._specs if name in needed)

    def dependencies_transitive(self, name: str) -> Tuple[str, ...]:
        """All stages reachable upstream of ``name``, in graph order."""
        order = self.topological_order([name])
        return tuple(stage for stage in order if stage != name)


def partition(items: Sequence[Any], target_shards: int) -> List[Tuple[int, int]]:
    """Split ``len(items)`` positions into at most ``target_shards`` blocks.

    Returns ``[(start, stop), ...]`` half-open ranges covering the
    sequence contiguously, balanced to within one item.  The result is
    a pure function of ``(len(items), target_shards)`` — crucially it
    does not depend on worker count, so the shard set (and every
    per-shard RNG derivation keyed on it) is identical no matter how
    the run is parallelized.
    """
    if target_shards < 1:
        raise ValidationError(f"target_shards must be >= 1, got {target_shards}")
    n = len(items)
    if n == 0:
        return []
    shards = min(n, target_shards)
    base, extra = divmod(n, shards)
    blocks = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        blocks.append((start, start + size))
        start += size
    return blocks


def partition_cohorts(
    n_items: int, cohort_size: int
) -> List[Tuple[int, int]]:
    """Split ``n_items`` positions into fixed-size streaming cohorts.

    Where :func:`partition` answers "spread this work over at most N
    shards", this answers the streaming question — "never hold more
    than ``cohort_size`` items at once" — which is how the columnar
    record path bounds peak memory while the cohort *count* grows with
    the world.  Delegates to
    :func:`repro.columnar.chunks.cohort_bounds`; like :func:`partition`
    the result is a pure function of its arguments, never of worker
    count, so cohort-keyed RNG derivations are reproducible.

    Raises :class:`repro.errors.ColumnarError` on invalid geometry.
    """
    return cohort_bounds(n_items, cohort_size)
