"""The execution engine: cache → execute → merge, stage by stage.

For every stage in topological order the engine

1. asks the stage to **plan** its shard list (a pure function of the
   world and upstream products),
2. probes the **artifact cache** for each shard's content key,
3. fans the missing shards out through the :class:`ShardExecutor`,
4. persists fresh shard products, and
5. **merges** hits and fresh results in canonical shard order.

A warm re-run therefore executes zero shard work — every shard is a
cache hit and only the (cheap) merges replay — and editing one stage's
code invalidates exactly that stage and its dependents, because cache
keys fold the dependency chain's code salts (see
:mod:`repro.runtime.cache`).

Observability rides along without touching determinism:

* every run carries a :class:`repro.obs.MetricsRegistry`; shard-local
  snapshots (produced inside the executor) are folded into it in
  canonical plan order, so the merged registry is identical for any
  worker count — and cached shards replay their snapshots from the
  cache envelope, so a warm run reports the same shard metrics as the
  cold run that produced it;
* an injected :class:`repro.obs.Tracer` (default: the no-op
  :data:`~repro.obs.NULL_TRACER`) records ``run`` → ``world:build`` /
  ``stage:<name>`` → ``plan`` / ``cache:probe`` / ``execute`` /
  ``merge`` spans; timing lives **only** in spans, never in the
  registry, which is what keeps registry snapshots comparable;
* worker span trees ship home in the shard results and are **grafted**
  under each stage's ``execute`` span with their real pid/tid tracks,
  so a traced ``--workers N`` run exports one Chrome trace with N
  worker process tracks stitched into the engine timeline;
* with ``profile_hz`` set, every shard samples its own stacks
  (:mod:`repro.obs.profile`) and the engine folds the per-shard
  profiles in canonical plan order — profiles ride the cache envelope
  next to the metrics snapshot, so a warm replay reports the cold
  run's profile and the fold is invariant to worker count;
* after the root span closes, the engine assembles a provenance
  manifest (:mod:`repro.runtime.provenance`) and — when a cache
  directory is configured — writes it atomically next to the artifacts.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import WorldConfig
from repro.datasets.builder import World, cached_build_world
from repro.obs import names as obs_names
from repro.obs.ledger import append_record, ledger_path
from repro.obs.manifest import write_manifest
from repro.obs.metrics import MetricsRegistry, collecting
from repro.obs.profile import (
    DEFAULT_HZ,
    TOP_FUNCTIONS,
    Profile,
    build_report,
)
from repro.obs.trace import NULL_TRACER, Tracer, tracing
from repro.runtime.cache import ArtifactCache, config_digest, effective_salts
from repro.runtime.executor import ShardExecutor
from repro.runtime.footprint import (
    footprint_salts,
    stage_costs,
    stage_footprints,
    stage_lineages,
)
from repro.runtime.graph import StageGraph
from repro.runtime.provenance import build_ledger_record, build_manifest
from repro.runtime.stages import STAGE_GRAPH, product_record_counts

#: filename of the per-run provenance manifest inside the cache dir
MANIFEST_FILENAME = "manifest.json"

#: marker key of the cache envelope that pairs an artifact with the
#: shard-local observability recorded while producing it: the metrics
#: snapshot, the worker span rows, and the stack profile (if sampled)
_ENVELOPE_MARK = "__shard_envelope__"


def _wrap_envelope(
    artifact: Any,
    metrics: Dict[str, Any],
    spans: Optional[List[Dict[str, Any]]] = None,
    profile: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    envelope: Dict[str, Any] = {
        _ENVELOPE_MARK: 1,
        "artifact": artifact,
        "metrics": metrics,
    }
    if spans:
        envelope["spans"] = spans
    if profile is not None:
        envelope["profile"] = profile
    return envelope


def _unwrap_envelope(
    obj: Any,
) -> Tuple[
    Any,
    Dict[str, Any],
    List[Dict[str, Any]],
    Optional[Dict[str, Any]],
]:
    """Split a cached object into (artifact, metrics, spans, profile).

    Artifacts written before the envelope existed load as themselves
    with empty observability — a warm run over a legacy cache stays
    correct, it just cannot replay shard metrics, spans or profiles.
    Envelopes written before spans/profiles existed replay their
    metrics and nothing else (``.get`` fallbacks, same reasoning).
    """
    if isinstance(obj, dict) and obj.get(_ENVELOPE_MARK) == 1:
        return (
            obj["artifact"],
            obj["metrics"],
            obj.get("spans") or [],
            obj.get("profile"),
        )
    return obj, {}, [], None


@dataclass
class StageMetrics:
    """Wall-time, cache behaviour and record flow of one stage in one run."""

    name: str
    n_shards: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    shard_keys: List[str] = field(default_factory=list)
    records_in: Dict[str, Any] = field(default_factory=dict)
    records_out: Dict[str, int] = field(default_factory=dict)
    #: metric keys this stage's shard snapshots touched — the ownership
    #: evidence the ledger diff engine attributes metric deltas with
    metric_keys: List[str] = field(default_factory=list)

    @property
    def executed_shards(self) -> int:
        return self.n_shards - self.cache_hits


@dataclass
class RunResult:
    """Everything one engine run produced."""

    config: WorldConfig
    workers: int
    products: Dict[str, Any]
    metrics: Dict[str, StageMetrics] = field(default_factory=dict)
    world_build_s: float = 0.0
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = NULL_TRACER
    manifest: Optional[Dict[str, Any]] = None
    #: the ledger record appended for this run (None without a cache dir)
    ledger_record: Optional[Dict[str, Any]] = None
    #: per-stage folded stack profiles — fresh samples on misses, cold
    #: replays from the cache envelope on hits (empty when neither)
    profiles: Dict[str, Profile] = field(default_factory=dict)
    #: the sampling rate the engine ran with (None = not profiling)
    profile_hz: Optional[float] = None

    @property
    def total_wall_s(self) -> float:
        return self.world_build_s + sum(
            m.wall_s for m in self.metrics.values()
        )

    @property
    def cache_hits(self) -> int:
        """Run-total cache hits, aggregated by the metrics registry.

        The registry owns the fold (:meth:`MetricsRegistry.sum_counters`
        over the per-stage ``runtime.cache.hits`` counters) — callers
        must not re-sum per-stage numbers themselves.
        """
        return int(self.registry.sum_counters(obs_names.RUNTIME_CACHE_HITS))

    @property
    def cache_misses(self) -> int:
        """Run-total cache misses (see :attr:`cache_hits`)."""
        return int(
            self.registry.sum_counters(obs_names.RUNTIME_CACHE_MISSES)
        )

    def metrics_rows(self) -> List[Dict[str, Any]]:
        """Per-stage counters as plain rows (for reports and JSON export)."""
        return [
            {
                "stage": m.name,
                "shards": m.n_shards,
                "cache_hits": m.cache_hits,
                "cache_misses": m.cache_misses,
                "wall_s": round(m.wall_s, 4),
            }
            for m in self.metrics.values()
        ]

    def metrics_report(self) -> str:
        """A fixed-width per-stage counter table for terminal output."""
        lines = [
            f"{'stage':<18} {'shards':>6} {'hits':>5} {'miss':>5} {'wall':>9}"
        ]
        for m in self.metrics.values():
            lines.append(
                f"{m.name:<18} {m.n_shards:>6} {m.cache_hits:>5} "
                f"{m.cache_misses:>5} {m.wall_s:>8.3f}s"
            )
        lines.append(
            f"{'world+total':<18} {'':>6} {self.cache_hits:>5} "
            f"{self.cache_misses:>5} {self.total_wall_s:>8.3f}s"
        )
        return "\n".join(lines)

    def merged_profile(self) -> Profile:
        """All stage profiles folded into one (canonical stage order)."""
        merged = Profile()
        for name in sorted(self.profiles):
            merged.merge(self.profiles[name])
        return merged

    def profile_report(
        self, top: int = TOP_FUNCTIONS
    ) -> Optional[Dict[str, Any]]:
        """The per-stage profile report, or ``None`` when the run
        neither sampled nor replayed any profiles.

        A warm run that replays cold profiles without sampling itself
        reports them under :data:`~repro.obs.profile.DEFAULT_HZ` (the
        envelope ships stacks, not the rate that produced them).
        """
        if not self.profiles and self.profile_hz is None:
            return None
        hz = self.profile_hz if self.profile_hz is not None else DEFAULT_HZ
        return build_report(self.profiles, hz=hz, top=top)

    def profile_table(self, top: int = 10) -> str:
        """The merged profile's top-N self-time table (terminal form)."""
        return self.merged_profile().render_table(top=top)

    def trace_report(self) -> str:
        """The tracer's text flamegraph plus histogram quantiles.

        Stage summaries gain a distribution block: every histogram in
        the run registry is rendered with its sample count, p50 and p95
        (:meth:`~repro.obs.metrics.Histogram.quantile`), so the report
        answers "how skewed was it?" and not just "how long did it
        take?".
        """
        flame = self.tracer.report()
        if not self.tracer.spans:
            return flame  # untraced runs stay "(tracing disabled)"
        lines = [flame]
        histograms = self.registry.histograms()
        if histograms:
            lines.append("")
            lines.append(
                f"{'histogram':<42} {'count':>7} {'p50':>9} {'p95':>9}"
            )
            for key, histogram in histograms:
                lines.append(
                    f"{key:<42} {histogram.count:>7} "
                    f"{histogram.quantile(0.5):>9.4f} "
                    f"{histogram.quantile(0.95):>9.4f}"
                )
        return "\n".join(lines)


class ExecutionEngine:
    """Runs the stage graph for a config with workers and a cache."""

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        graph: Optional[StageGraph] = None,
        profile_hz: Optional[float] = None,
    ) -> None:
        self.graph = graph if graph is not None else STAGE_GRAPH
        self.executor = ShardExecutor(workers, profile_hz=profile_hz)
        self.cache = ArtifactCache(cache_dir)
        # Module footprints close the stale-cache hazard: a stage's salt
        # folds the digest of every module its code can transitively
        # reach, so editing a helper (core/classify.py, ...) invalidates
        # exactly the stages that can execute it.  The underlying
        # program model is memoized per process; stages whose callables
        # the model cannot see (ad-hoc test graphs) fold no footprint.
        self._footprints = stage_footprints(self.graph)
        self._salts = effective_salts(
            self.graph, footprint_salts(self._footprints)
        )
        # RNG lineage trees close the same loop for randomness: the
        # dataflow engine's per-stage derivation structure is embedded
        # in manifests, so a change in how a stage derives its streams
        # shows up as code-driven in `repro obs diff`.  Computed from
        # the same memoized program model as the footprints.
        self._lineages = stage_lineages(self.graph)
        # Cost footprints do the same for accidental complexity: the
        # static loop-nesting/hazard digest of each stage's run path is
        # embedded in manifests and ledger records, so a stage that got
        # structurally slower shows up as `cost:<stage>` in obs diff.
        self._costs = stage_costs(self.graph)

    @property
    def workers(self) -> int:
        return self.executor.workers

    @property
    def profile_hz(self) -> Optional[float]:
        return self.executor.profile_hz

    def run(
        self,
        config: WorldConfig,
        targets: Sequence[str] = (),
        tracer: Optional[Tracer] = None,
    ) -> RunResult:
        """Execute the graph (or the sub-graph reaching ``targets``).

        ``tracer`` selects the observability level: ``None`` (the no-op
        default) records nothing; a real :class:`~repro.obs.Tracer` is
        installed as the ambient tracer for the run and receives the
        engine's span tree.  Traced and untraced runs execute identical
        pipeline code — the study products cannot differ.
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        registry = MetricsRegistry()
        digest = config_digest(config)
        result = RunResult(
            config=config,
            workers=self.workers,
            products={},
            registry=registry,
            tracer=tracer,
            profile_hz=self.profile_hz,
        )
        with tracing(tracer):
            with tracer.span(
                obs_names.SPAN_RUN, digest=digest[:12], workers=self.workers
            ):
                build_start = time.perf_counter()
                # World construction stays OUTSIDE the collection scope
                # on purpose: cached_build_world is memoized in-process,
                # so its instrumented internals fire on the first run
                # and not on later ones — collecting them would make
                # otherwise-identical runs disagree on their registries.
                with tracer.span(obs_names.SPAN_WORLD_BUILD):
                    world = cached_build_world(config)
                result.world_build_s = time.perf_counter() - build_start
                # The ambient scope makes engine-side instrumentation
                # (e.g. the cache's corrupt-artifact counter) land in
                # the run registry; shard bodies still collect into
                # shard-local registries the executor opens on top.
                with collecting(registry):
                    for name in self.graph.topological_order(targets):
                        result.metrics[name] = self._run_stage(
                            name, world, digest, result.products, tracer,
                            registry, result.profiles,
                        )
        result.manifest = build_manifest(
            result, digest, self._salts, self._footprints,
            lineages=self._lineages, costs=self._costs,
        )
        if self.cache.enabled:
            write_manifest(
                result.manifest,
                os.path.join(str(self.cache.root), MANIFEST_FILENAME),
            )
            # The run ledger accumulates where the manifest overwrites:
            # every cached run appends one record (config digest, salts,
            # footprints, registry snapshot, per-stage timings), which
            # is what `repro obs diff` compares across runs.
            result.ledger_record = append_record(
                ledger_path(str(self.cache.root)),
                build_ledger_record(
                    result, digest, self._salts, self._footprints,
                    lineages=self._lineages, costs=self._costs,
                ),
            )
        return result

    def _run_stage(
        self,
        name: str,
        world: World,
        digest: str,
        products: Dict[str, Any],
        tracer: Tracer,
        registry: MetricsRegistry,
        profiles: Dict[str, Profile],
    ) -> StageMetrics:
        spec = self.graph[name]
        metrics = StageMetrics(name=name)
        metrics.records_in = {
            dep: product_record_counts(dep, products[dep])
            for dep in spec.inputs
        }
        start = time.perf_counter()
        cpu_start = time.process_time()
        with tracer.span(f"stage:{name}") as stage_span:
            with tracer.span(obs_names.SPAN_PLAN, stage=name):
                shards = spec.plan(world, products)
            metrics.n_shards = len(shards)
            metrics.shard_keys = [shard_key for shard_key, _ in shards]

            keys: Dict[str, str] = {
                shard_key: self.cache.key(
                    digest, self._salts[name], name, shard_key
                )
                for shard_key, _ in shards
            }
            # Shard-local observability, keyed by shard — replayed from
            # the cache envelope on hits, fresh from the executor on
            # misses, folded below in canonical plan order.
            snapshots: Dict[str, Dict[str, Any]] = {}
            span_rows: Dict[str, List[Dict[str, Any]]] = {}
            profile_payloads: Dict[str, Optional[Dict[str, Any]]] = {}
            cached: Dict[str, Any] = {}
            pending: List[Tuple[str, Any]] = []
            with tracer.span(obs_names.SPAN_CACHE_PROBE, stage=name):
                for shard_key, payload in shards:
                    hit, obj = self.cache.load(name, keys[shard_key])
                    if hit:
                        artifact, snapshot, rows, prof = _unwrap_envelope(obj)
                        cached[shard_key] = artifact
                        snapshots[shard_key] = snapshot
                        span_rows[shard_key] = rows
                        profile_payloads[shard_key] = prof
                        metrics.cache_hits += 1
                    else:
                        pending.append((shard_key, payload))
                        metrics.cache_misses += 1

            with tracer.span(
                obs_names.SPAN_EXECUTE, stage=name, shards=len(pending)
            ) as execute_span:
                fresh: Dict[str, Any] = {}
                for shard_key, (
                    artifact, snapshot, rows, prof,
                ) in self.executor.execute(spec, world, products, pending):
                    fresh[shard_key] = artifact
                    snapshots[shard_key] = snapshot
                    span_rows[shard_key] = rows
                    profile_payloads[shard_key] = prof
                    self.cache.store(
                        name,
                        keys[shard_key],
                        _wrap_envelope(artifact, snapshot, rows, prof),
                    )
            # Stitch the worker span trees under the execute span —
            # plan order, each shard's tree re-anchored so its root
            # opens at the execute span's own start (worker clocks are
            # process-local and replayed trees carry a past run's
            # timeline).  pid/tid stamps ride along, so the exported
            # trace shows real worker process tracks.
            if tracer.enabled:
                for shard_key, _ in shards:
                    rows = span_rows.get(shard_key) or []
                    if not rows:
                        continue
                    origin = min(
                        float(row.get("wall_start", 0.0)) for row in rows
                    )
                    tracer.graft(
                        rows,
                        parent=execute_span.index,
                        offset=execute_span.wall_start - origin,
                    )
            # Fold shard profiles in plan order.  When the engine is
            # profiling, every stage owns a Profile even if no samples
            # landed — the report's `_total` row must exist for budget
            # envelopes to gate deterministically.
            stage_profile = (
                Profile() if self.profile_hz is not None else None
            )
            for shard_key, _ in shards:
                payload = profile_payloads.get(shard_key)
                if not payload:
                    continue
                if stage_profile is None:
                    stage_profile = Profile()
                stage_profile.merge(Profile.from_dict(payload))
            if stage_profile is not None:
                profiles[name] = stage_profile

            registry.counter(
                obs_names.RUNTIME_SHARDS_PLANNED, stage=name
            ).inc(metrics.n_shards)
            registry.counter(
                obs_names.RUNTIME_SHARDS_EXECUTED, stage=name
            ).inc(len(pending))
            registry.counter(
                obs_names.RUNTIME_CACHE_HITS, stage=name
            ).inc(metrics.cache_hits)
            registry.counter(
                obs_names.RUNTIME_CACHE_MISSES, stage=name
            ).inc(metrics.cache_misses)
            # Fold shard snapshots in plan order — NOT completion order —
            # so the merged registry is invariant to worker count.
            for shard_key, _ in shards:
                registry.merge(snapshots.get(shard_key, {}))
            metrics.metric_keys = sorted({
                key
                for snapshot in snapshots.values()
                for key in (snapshot or {})
            })

            # Merge in canonical plan order, mixing hits and fresh results.
            ordered: List[Tuple[str, Any]] = [
                (
                    shard_key,
                    cached[shard_key]
                    if shard_key in cached
                    else fresh[shard_key],
                )
                for shard_key, _ in shards
            ]
            with tracer.span(obs_names.SPAN_MERGE, stage=name):
                products[name] = spec.merge(world, products, ordered)
            metrics.records_out = product_record_counts(name, products[name])
            stage_span.attrs.update(
                shards=metrics.n_shards,
                hits=metrics.cache_hits,
                misses=metrics.cache_misses,
            )
        metrics.wall_s = time.perf_counter() - start
        # Parent-process CPU only: worker CPU is deliberately excluded
        # (it would make cpu_s depend on the worker count), so cpu_s
        # reads as "coordination cost" under fan-out and as true stage
        # cost on the inline workers=1 path.
        metrics.cpu_s = time.process_time() - cpu_start
        return metrics
