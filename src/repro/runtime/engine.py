"""The execution engine: cache → execute → merge, stage by stage.

For every stage in topological order the engine

1. asks the stage to **plan** its shard list (a pure function of the
   world and upstream products),
2. probes the **artifact cache** for each shard's content key,
3. fans the missing shards out through the :class:`ShardExecutor`,
4. persists fresh shard products, and
5. **merges** hits and fresh results in canonical shard order.

A warm re-run therefore executes zero shard work — every shard is a
cache hit and only the (cheap) merges replay — and editing one stage's
code invalidates exactly that stage and its dependents, because cache
keys fold the dependency chain's code salts (see
:mod:`repro.runtime.cache`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import WorldConfig
from repro.datasets.builder import World, cached_build_world
from repro.runtime.cache import ArtifactCache, config_digest, effective_salts
from repro.runtime.executor import ShardExecutor
from repro.runtime.graph import StageGraph
from repro.runtime.stages import STAGE_GRAPH


@dataclass
class StageMetrics:
    """Wall-time and cache behaviour of one stage in one run."""

    name: str
    n_shards: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_s: float = 0.0

    @property
    def executed_shards(self) -> int:
        return self.n_shards - self.cache_hits


@dataclass
class RunResult:
    """Everything one engine run produced."""

    config: WorldConfig
    workers: int
    products: Dict[str, Any]
    metrics: Dict[str, StageMetrics] = field(default_factory=dict)
    world_build_s: float = 0.0

    @property
    def total_wall_s(self) -> float:
        return self.world_build_s + sum(
            m.wall_s for m in self.metrics.values()
        )

    @property
    def cache_hits(self) -> int:
        return sum(m.cache_hits for m in self.metrics.values())

    @property
    def cache_misses(self) -> int:
        return sum(m.cache_misses for m in self.metrics.values())

    def metrics_rows(self) -> List[Dict[str, Any]]:
        """Per-stage counters as plain rows (for reports and JSON export)."""
        return [
            {
                "stage": m.name,
                "shards": m.n_shards,
                "cache_hits": m.cache_hits,
                "cache_misses": m.cache_misses,
                "wall_s": round(m.wall_s, 4),
            }
            for m in self.metrics.values()
        ]

    def metrics_report(self) -> str:
        """A fixed-width per-stage counter table for terminal output."""
        lines = [
            f"{'stage':<18} {'shards':>6} {'hits':>5} {'miss':>5} {'wall':>9}"
        ]
        for m in self.metrics.values():
            lines.append(
                f"{m.name:<18} {m.n_shards:>6} {m.cache_hits:>5} "
                f"{m.cache_misses:>5} {m.wall_s:>8.3f}s"
            )
        lines.append(
            f"{'world+total':<18} {'':>6} {self.cache_hits:>5} "
            f"{self.cache_misses:>5} {self.total_wall_s:>8.3f}s"
        )
        return "\n".join(lines)


class ExecutionEngine:
    """Runs the stage graph for a config with workers and a cache."""

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        graph: Optional[StageGraph] = None,
    ) -> None:
        self.graph = graph if graph is not None else STAGE_GRAPH
        self.executor = ShardExecutor(workers)
        self.cache = ArtifactCache(cache_dir)
        self._salts = effective_salts(self.graph)

    @property
    def workers(self) -> int:
        return self.executor.workers

    def run(
        self,
        config: WorldConfig,
        targets: Sequence[str] = (),
    ) -> RunResult:
        """Execute the graph (or the sub-graph reaching ``targets``)."""
        digest = config_digest(config)
        build_start = time.perf_counter()
        world = cached_build_world(config)
        result = RunResult(
            config=config,
            workers=self.workers,
            products={},
            world_build_s=time.perf_counter() - build_start,
        )
        for name in self.graph.topological_order(targets):
            result.metrics[name] = self._run_stage(
                name, world, digest, result.products
            )
        return result

    def _run_stage(
        self,
        name: str,
        world: World,
        digest: str,
        products: Dict[str, Any],
    ) -> StageMetrics:
        spec = self.graph[name]
        metrics = StageMetrics(name=name)
        start = time.perf_counter()
        shards = spec.plan(world, products)
        metrics.n_shards = len(shards)

        keys: Dict[str, str] = {
            shard_key: self.cache.key(digest, self._salts[name], name, shard_key)
            for shard_key, _ in shards
        }
        cached: Dict[str, Any] = {}
        pending: List[Tuple[str, Any]] = []
        for shard_key, payload in shards:
            hit, artifact = self.cache.load(name, keys[shard_key])
            if hit:
                cached[shard_key] = artifact
                metrics.cache_hits += 1
            else:
                pending.append((shard_key, payload))
                metrics.cache_misses += 1

        fresh = dict(
            self.executor.execute(spec, world, products, pending)
        )
        for shard_key, artifact in fresh.items():
            self.cache.store(name, keys[shard_key], artifact)

        # Merge in canonical plan order, mixing hits and fresh results.
        ordered: List[Tuple[str, Any]] = [
            (
                shard_key,
                cached[shard_key] if shard_key in cached else fresh[shard_key],
            )
            for shard_key, _ in shards
        ]
        products[name] = spec.merge(world, products, ordered)
        metrics.wall_s = time.perf_counter() - start
        return metrics
