"""repro.runtime — sharded parallel execution with artifact caching.

The paper's pipeline is embarrassingly shardable: panel users browse
independently, tracker IPs are geolocated one campaign at a time, flows
aggregate by counting, ISPs are analyzed in isolation.  This subsystem
exploits that structure:

* :mod:`repro.runtime.graph` — the **stage graph**: the eight pipeline
  stages as declarative nodes with explicit inputs/outputs and a shard
  axis (users, tracker domains, IPs, flows, ISPs);
* :mod:`repro.runtime.stages` — per-stage plan / run / merge
  implementations with per-shard seeded RNG, so every shard is
  independent of every other and of the worker that executes it;
* :mod:`repro.runtime.executor` — the parallel executor fanning shards
  over ``concurrent.futures`` process workers (or running them inline
  for ``workers=1``), with a deterministic, order-independent merge;
* :mod:`repro.runtime.cache` — the content-addressed on-disk artifact
  cache keyed on (config digest, code-version salt, stage, shard);
* :mod:`repro.runtime.engine` — the orchestrator tying the four
  together, recording spans/metrics through :mod:`repro.obs` and
  reporting per-stage wall-time / cache-hit counters;
* :mod:`repro.runtime.provenance` — assembly of the per-run provenance
  manifest (config digest, code salts, record counts, seed lineage);
* :mod:`repro.runtime.facade` — the high-level entry point
  (:func:`run_study`) that hydrates a :class:`repro.Study` from the
  engine's products.

Results are invariant to the worker count and to cache replay: the
shard partition is a pure function of the world (never of ``workers``),
each shard draws from RNG streams derived from its own key, and merges
fold shard products in shard order.

Typical use::

    from repro.runtime import run_study

    run = run_study(WorldConfig.small(), workers=4, cache_dir=".repro-cache")
    print(run.eu28_destination_regions())   # Fig. 7(b), engine-backed
    print(run.metrics_report())             # per-stage wall/cache stats
"""

from repro.runtime.cache import ArtifactCache, config_digest
from repro.runtime.engine import (
    MANIFEST_FILENAME,
    ExecutionEngine,
    RunResult,
    StageMetrics,
)
from repro.runtime.facade import RuntimeRun, run_study
from repro.runtime.graph import ShardAxis, StageGraph, StageSpec, partition
from repro.runtime.provenance import build_manifest, seed_lineage
from repro.runtime.stages import (
    STAGE_GRAPH,
    STAGE_NAMES,
    product_record_counts,
)

__all__ = [
    "ArtifactCache",
    "ExecutionEngine",
    "MANIFEST_FILENAME",
    "RunResult",
    "RuntimeRun",
    "ShardAxis",
    "StageGraph",
    "StageMetrics",
    "StageSpec",
    "STAGE_GRAPH",
    "STAGE_NAMES",
    "build_manifest",
    "config_digest",
    "partition",
    "product_record_counts",
    "run_study",
    "seed_lineage",
]
