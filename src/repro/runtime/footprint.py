"""Module-footprint salts: the lint analyzer's view, folded into cache keys.

:func:`repro.runtime.cache.stage_code_salt` hashes a stage's own
plan/run/merge source — but those callables reach helpers across the
tree (``core/classify.py``, ``geoloc/ipmap.py``, …), and editing a
helper must invalidate the cached artifacts of exactly the stages that
can execute it.  This module computes that *footprint* from the same
:class:`~repro.lint.program.ProgramModel` the C4xx lint rules use, so
the invariant checked statically ("every reachable module is folded
into the salt") is by construction the quantity enforced at runtime.

The model is built once per process per source root (about half a
second for the full tree) and memoized; stages whose callables the
model cannot see — lambdas, closures, functions defined outside the
analyzed root, as in synthetic unit-test graphs — simply get no
footprint, which folds as the empty salt and reproduces the
pre-footprint cache keys.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Dict, Optional

from repro.lint.cost import cost_for_model
from repro.lint.dataflow import dataflow_for_model
from repro.lint.program import Footprint, ProgramModel

#: process-wide model memo, keyed by resolved source root; engines run
#: on serve worker threads as well as the main thread, so the memo is
#: guarded by a lock
_MODELS: Dict[str, ProgramModel] = {}
_MODELS_LOCK = threading.Lock()


def default_root() -> Path:
    """The installed ``repro`` package tree (…/src/repro)."""
    return Path(__file__).resolve().parents[1]


def program_model(root: Optional[Path] = None) -> ProgramModel:
    """The (memoized) program model of one source root."""
    resolved = (root or default_root()).resolve()
    key = str(resolved)
    with _MODELS_LOCK:
        model = _MODELS.get(key)
        if model is None:
            model = ProgramModel.from_paths([resolved], root=resolved.parent)
            _MODELS[key] = model
    return model


def stage_footprints(
    graph: Any, root: Optional[Path] = None
) -> Dict[str, Footprint]:
    """Per-stage footprints for a live :class:`StageGraph`.

    Seeds come from the spec's actual function objects
    (``__module__``/``__qualname__``), not from static stage discovery,
    so any graph whose callables live inside the analyzed root gets a
    footprint — including test graphs assembled ad hoc.  A stage is
    footprinted only when *all three* callables resolve into the model;
    a partial footprint would claim coverage it does not have.
    """
    model = program_model(root)
    footprints: Dict[str, Footprint] = {}
    for spec in graph.stages:
        seeds = []
        for fn in (spec.plan, spec.run, spec.merge):
            module = getattr(fn, "__module__", None)
            qualname = getattr(fn, "__qualname__", None)
            if (
                not module
                or not qualname
                or "<locals>" in qualname
                or module not in model.modules
                or model.function((module, qualname)) is None
            ):
                seeds = []
                break
            seeds.append((module, qualname))
        if seeds:
            footprints[spec.name] = model.footprint(sorted(set(seeds)))
    return footprints


def footprint_salts(footprints: Dict[str, Footprint]) -> Dict[str, str]:
    """Just the salt strings, shaped for :func:`effective_salts`."""
    return {name: fp.salt for name, fp in footprints.items()}


def stage_lineages(
    graph: Any, root: Optional[Path] = None
) -> Dict[str, Dict[str, Any]]:
    """Per-stage RNG lineage trees for a live :class:`StageGraph`.

    The dataflow engine (:mod:`repro.lint.dataflow`) walks the call
    graph from each stage's ``run`` callable and collects every RNG
    derivation site it can reach — which stream names are spawned or
    forked, through which API, in which function.  The tree's digest is
    purely structural (no line numbers), so it moves exactly when the
    derivation *shape* changes, and the manifest can show a lineage
    change as code-driven in ``repro obs diff``.  Stages the model
    cannot see (synthetic test graphs) get no lineage, mirroring
    :func:`stage_footprints`.
    """
    model = program_model(root)
    df = dataflow_for_model(model)
    lineages: Dict[str, Dict[str, Any]] = {}
    for spec in graph.stages:
        module = getattr(spec.run, "__module__", None)
        qualname = getattr(spec.run, "__qualname__", None)
        if (
            not module
            or not qualname
            or "<locals>" in qualname
            or model.function((module, qualname)) is None
        ):
            continue
        lineages[spec.name] = df.stage_lineage(
            spec.name, (module, qualname)
        )
    return lineages


def stage_costs(
    graph: Any, root: Optional[Path] = None
) -> Dict[str, Dict[str, Any]]:
    """Per-stage static cost footprints for a live :class:`StageGraph`.

    The cost engine (:mod:`repro.lint.cost`) walks the call graph from
    each stage's ``run`` callable and folds every reachable function's
    loop-nesting depth and hazard sites into one footprint.  Its digest
    is structural (no line numbers): stable under pure line-shift
    edits, moved by any change to the loop shape or hazard set on the
    stage's run path — so ``repro obs diff`` can attribute a moved
    digest to a *code* cause (``cost:<stage>``).  Stages the model
    cannot see get no footprint, mirroring :func:`stage_lineages`.
    """
    model = program_model(root)
    analysis = cost_for_model(model)
    costs: Dict[str, Dict[str, Any]] = {}
    for spec in graph.stages:
        module = getattr(spec.run, "__module__", None)
        qualname = getattr(spec.run, "__qualname__", None)
        if (
            not module
            or not qualname
            or "<locals>" in qualname
            or model.function((module, qualname)) is None
        ):
            continue
        footprint = analysis.cost_footprint((module, qualname))
        if footprint is not None:
            costs[spec.name] = footprint
    return costs
