"""Parallel shard executor.

Fans a stage's shards over ``concurrent.futures`` process workers and
returns the shard products in canonical (plan) order, so the caller's
merge is independent of completion order and of the worker count.

Two dispatch paths:

* **fork** (Linux default): the pool is created per stage, after the
  parent has built the world and the upstream products — workers inherit
  both copy-on-write and the submitted task carries only the stage name
  and shard payload.
* **spawn/forkserver** (portability fallback): tasks ship the config and
  the stage's input products; workers rebuild the world once per process
  via :func:`repro.datasets.builder.cached_build_world`.

``workers=1`` (or a single shard) executes inline in the calling
process — the engine's "serial path" — through the exact same stage
functions, which is what makes worker-count invariance testable.

Every shard runs inside its own :class:`repro.obs.MetricsRegistry`
collection scope **and** its own :class:`repro.obs.Tracer`, and each
result ships back as an ``(artifact, metrics_snapshot, span_rows,
profile)`` tuple.  Because every piece is shard-local and the engine
folds them in canonical plan order, the merged registry (and the merged
profile) is byte-identical for any worker count — observability rides
the same determinism guarantees as the artifacts themselves.  Span rows
carry the worker's real pid/tid, so the engine can stitch them into the
parent trace as distinct process tracks; ``profile`` is a
:class:`repro.obs.Profile` snapshot when the engine asked for sampling
(``profile_hz``), else ``None``.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.datasets.builder import World, cached_build_world
from repro.errors import ExecutionError
from repro.obs.metrics import MetricsRegistry, collecting
from repro.obs.profile import SamplingProfiler
from repro.obs.trace import Tracer, spans_to_payload, tracing
from repro.runtime.graph import StageSpec
from repro.runtime.stages import STAGE_GRAPH

#: a shard's result: the artifact, its shard-local metrics snapshot,
#: its span rows (pid/tid-stamped, graftable) and its stack profile
#: (``None`` when the run is not profiling)
ShardResult = Tuple[
    Any,
    Dict[str, Dict[str, Any]],
    List[Dict[str, Any]],
    Optional[Dict[str, Any]],
]

#: parent-side context inherited by forked workers: (world, products).
#: Module state by necessity — it is what the fork snapshot carries —
#: so the set→fork→reset window is serialized by :data:`_FORK_LOCK`:
#: two serve jobs pooling concurrently must not fork each other's
#: worlds.
_FORK_CONTEXT: Optional[Tuple[World, Mapping[str, Any]]] = None
_FORK_LOCK = threading.Lock()


def _instrumented_run(
    run: Any,
    world: Optional[World],
    products: Mapping[str, Any],
    stage_name: str,
    shard_key: str,
    payload: Any,
    profile_hz: Optional[float] = None,
) -> ShardResult:
    """Run one shard inside fresh metrics/tracing collection scopes.

    The registry and tracer are created here — per shard, per process —
    so ambient :func:`repro.obs.metrics.inc` calls and spans inside
    stage code land in containers that travel back with the artifact
    instead of in global state a pool worker would silently discard.
    The shard's spans root at a ``stage:<name>`` span and are stamped
    with the recording pid/tid before shipping, so the engine can graft
    them into the parent trace as real process tracks.  With
    ``profile_hz`` set, a :class:`~repro.obs.profile.SamplingProfiler`
    samples this process for the duration of the shard and its profile
    snapshot ships back too.
    """
    registry = MetricsRegistry()
    tracer = Tracer()
    profiler = (
        SamplingProfiler(hz=profile_hz) if profile_hz is not None else None
    )
    with collecting(registry), tracing(tracer):
        with tracer.span(f"stage:{stage_name}", shard=shard_key):
            if profiler is not None:
                profiler.start()
            try:
                artifact = run(world, products, shard_key, payload)
            finally:
                if profiler is not None:
                    profiler.stop()
    pid = os.getpid()
    tid = threading.get_native_id()
    for span in tracer.spans:
        span.pid = pid
        span.tid = tid
    profile = profiler.profile.to_dict() if profiler is not None else None
    return (
        artifact,
        registry.to_dict(),
        spans_to_payload(tracer.spans),
        profile,
    )


def _run_shard_forked(
    stage_name: str,
    shard_key: str,
    payload: Any,
    profile_hz: Optional[float] = None,
) -> ShardResult:
    """Task body on the fork path: world/products come from the parent."""
    if _FORK_CONTEXT is None:
        raise ExecutionError(
            "forked worker has no inherited execution context"
        )
    world, products = _FORK_CONTEXT
    return _instrumented_run(
        STAGE_GRAPH[stage_name].run, world, products, stage_name,
        shard_key, payload, profile_hz,
    )


def _run_shard_shipped(
    config: Any,
    stage_name: str,
    shard_key: str,
    payload: Any,
    inputs: Mapping[str, Any],
    profile_hz: Optional[float] = None,
) -> ShardResult:
    """Task body on the spawn path: rebuild the world, use shipped inputs."""
    world = cached_build_world(config)
    return _instrumented_run(
        STAGE_GRAPH[stage_name].run, world, inputs, stage_name,
        shard_key, payload, profile_hz,
    )


class ShardExecutor:
    """Executes one stage's shard list with a fixed worker budget.

    ``profile_hz`` (optional) turns on per-shard stack sampling: every
    shard body — inline or pooled — runs under a
    :class:`~repro.obs.profile.SamplingProfiler` at that rate and ships
    its profile home in the shard result.
    """

    def __init__(
        self, workers: int = 1, profile_hz: Optional[float] = None
    ) -> None:
        if workers < 1:
            raise ExecutionError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.profile_hz = profile_hz

    def execute(
        self,
        spec: StageSpec,
        world: Optional[World],
        products: Mapping[str, Any],
        shards: List[Tuple[str, Any]],
    ) -> List[Tuple[str, ShardResult]]:
        """Run ``shards``; return ``(shard_key, (artifact, metrics,
        spans, profile))`` in plan order."""
        if not shards:
            return []
        if self.workers == 1 or len(shards) == 1:
            return [
                (
                    key,
                    _instrumented_run(
                        spec.run, world, products, spec.name, key,
                        payload, self.profile_hz,
                    ),
                )
                for key, payload in shards
            ]
        return self._execute_pool(spec, world, products, shards)

    def _execute_pool(
        self,
        spec: StageSpec,
        world: World,
        products: Mapping[str, Any],
        shards: List[Tuple[str, Any]],
    ) -> List[Tuple[str, ShardResult]]:
        global _FORK_CONTEXT
        use_fork = multiprocessing.get_start_method() == "fork"
        max_workers = min(self.workers, len(shards))
        inputs: Dict[str, Any] = {
            name: products[name] for name in spec.inputs
        }
        if not use_fork:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = [
                    pool.submit(
                        _run_shard_shipped,
                        world.config,
                        spec.name,
                        key,
                        payload,
                        inputs,
                        self.profile_hz,
                    )
                    for key, payload in shards
                ]
                # Collect in submission (= plan) order, not completion
                # order — merge determinism depends on it.
                return [
                    (key, future.result())
                    for (key, _), future in zip(shards, futures)
                ]
        # Fork path: the context must be set BEFORE the pool exists —
        # forked children inherit the world and upstream products
        # copy-on-write.  The lock holds until the stage drains so a
        # concurrent job cannot swap the context under our fork.
        with _FORK_LOCK:
            _FORK_CONTEXT = (world, products)
            try:
                with ProcessPoolExecutor(max_workers=max_workers) as pool:
                    futures = [
                        pool.submit(
                            _run_shard_forked, spec.name, key, payload,
                            self.profile_hz,
                        )
                        for key, payload in shards
                    ]
                    return [
                        (key, future.result())
                        for (key, _), future in zip(shards, futures)
                    ]
            finally:
                _FORK_CONTEXT = None
