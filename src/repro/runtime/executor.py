"""Parallel shard executor.

Fans a stage's shards over ``concurrent.futures`` process workers and
returns the shard products in canonical (plan) order, so the caller's
merge is independent of completion order and of the worker count.

Two dispatch paths:

* **fork** (Linux default): the pool is created per stage, after the
  parent has built the world and the upstream products — workers inherit
  both copy-on-write and the submitted task carries only the stage name
  and shard payload.
* **spawn/forkserver** (portability fallback): tasks ship the config and
  the stage's input products; workers rebuild the world once per process
  via :func:`repro.datasets.builder.cached_build_world`.

``workers=1`` (or a single shard) executes inline in the calling
process — the engine's "serial path" — through the exact same stage
functions, which is what makes worker-count invariance testable.

Every shard runs inside its own :class:`repro.obs.MetricsRegistry`
collection scope, and each result ships back as an
``(artifact, metrics_snapshot)`` pair.  Because the snapshot is
shard-local and the engine folds snapshots in canonical plan order, the
merged registry is byte-identical for any worker count — metrics ride
the same determinism guarantees as the artifacts themselves.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.datasets.builder import World, cached_build_world
from repro.errors import ExecutionError
from repro.obs.metrics import MetricsRegistry, collecting
from repro.runtime.graph import StageSpec
from repro.runtime.stages import STAGE_GRAPH

#: a shard's result: the artifact plus its shard-local metrics snapshot
ShardResult = Tuple[Any, Dict[str, Dict[str, Any]]]

#: parent-side context inherited by forked workers: (world, products).
#: Module state by necessity — it is what the fork snapshot carries —
#: so the set→fork→reset window is serialized by :data:`_FORK_LOCK`:
#: two serve jobs pooling concurrently must not fork each other's
#: worlds.
_FORK_CONTEXT: Optional[Tuple[World, Mapping[str, Any]]] = None
_FORK_LOCK = threading.Lock()


def _instrumented_run(
    run: Any,
    world: Optional[World],
    products: Mapping[str, Any],
    shard_key: str,
    payload: Any,
) -> ShardResult:
    """Run one shard inside a fresh metrics collection scope.

    The registry is created here — per shard, per process — so ambient
    :func:`repro.obs.metrics.inc` calls inside stage code land in a
    container that travels back with the artifact instead of in global
    state that a pool worker would silently discard.
    """
    registry = MetricsRegistry()
    with collecting(registry):
        artifact = run(world, products, shard_key, payload)
    return artifact, registry.to_dict()


def _run_shard_forked(
    stage_name: str, shard_key: str, payload: Any
) -> ShardResult:
    """Task body on the fork path: world/products come from the parent."""
    if _FORK_CONTEXT is None:
        raise ExecutionError(
            "forked worker has no inherited execution context"
        )
    world, products = _FORK_CONTEXT
    return _instrumented_run(
        STAGE_GRAPH[stage_name].run, world, products, shard_key, payload
    )


def _run_shard_shipped(
    config: Any,
    stage_name: str,
    shard_key: str,
    payload: Any,
    inputs: Mapping[str, Any],
) -> ShardResult:
    """Task body on the spawn path: rebuild the world, use shipped inputs."""
    world = cached_build_world(config)
    return _instrumented_run(
        STAGE_GRAPH[stage_name].run, world, inputs, shard_key, payload
    )


class ShardExecutor:
    """Executes one stage's shard list with a fixed worker budget."""

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ExecutionError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def execute(
        self,
        spec: StageSpec,
        world: Optional[World],
        products: Mapping[str, Any],
        shards: List[Tuple[str, Any]],
    ) -> List[Tuple[str, ShardResult]]:
        """Run ``shards``; return ``(shard_key, (artifact, metrics))`` in
        plan order."""
        if not shards:
            return []
        if self.workers == 1 or len(shards) == 1:
            return [
                (key, _instrumented_run(spec.run, world, products, key, payload))
                for key, payload in shards
            ]
        return self._execute_pool(spec, world, products, shards)

    def _execute_pool(
        self,
        spec: StageSpec,
        world: World,
        products: Mapping[str, Any],
        shards: List[Tuple[str, Any]],
    ) -> List[Tuple[str, ShardResult]]:
        global _FORK_CONTEXT
        use_fork = multiprocessing.get_start_method() == "fork"
        max_workers = min(self.workers, len(shards))
        inputs: Dict[str, Any] = {
            name: products[name] for name in spec.inputs
        }
        if not use_fork:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = [
                    pool.submit(
                        _run_shard_shipped,
                        world.config,
                        spec.name,
                        key,
                        payload,
                        inputs,
                    )
                    for key, payload in shards
                ]
                # Collect in submission (= plan) order, not completion
                # order — merge determinism depends on it.
                return [
                    (key, future.result())
                    for (key, _), future in zip(shards, futures)
                ]
        # Fork path: the context must be set BEFORE the pool exists —
        # forked children inherit the world and upstream products
        # copy-on-write.  The lock holds until the stage drains so a
        # concurrent job cannot swap the context under our fork.
        with _FORK_LOCK:
            _FORK_CONTEXT = (world, products)
            try:
                with ProcessPoolExecutor(max_workers=max_workers) as pool:
                    futures = [
                        pool.submit(_run_shard_forked, spec.name, key, payload)
                        for key, payload in shards
                    ]
                    return [
                        (key, future.result())
                        for (key, _), future in zip(shards, futures)
                    ]
            finally:
                _FORK_CONTEXT = None
