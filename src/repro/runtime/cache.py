"""Content-addressed on-disk artifact cache.

Cache keys are ``blake2b(config_digest | effective_salt | stage | shard)``
where the *effective salt* of a stage folds its own code-version salt
(source text of its plan/run/merge callables plus a manual version
string) with the effective salts of all its dependencies.  Editing the
code of stage N therefore changes the keys of N **and every downstream
stage**, while leaving upstream artifacts valid — a re-run recomputes
exactly N and its dependents.

Artifacts are pickled per shard under ``cache_dir/<stage>/<key>.pkl``.
Writes go through a temp file + ``os.replace`` so a crashed run never
leaves a truncated artifact behind; an artifact that fails to unpickle
is treated as a miss and overwritten.
"""

import hashlib
import inspect
import json
import os
import pickle
import threading
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import ValidationError
from repro.obs import metrics as obs_metrics
from repro.obs import names as obs_names

_DIGEST_BYTES = 20


def _blake(*parts: str) -> str:
    h = hashlib.blake2b(digest_size=_DIGEST_BYTES)
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x1f")
    return h.hexdigest()


def config_digest(config: Any) -> str:
    """Stable content digest of a (nested) frozen dataclass config.

    Defers to the config's own ``digest()`` method when present (as on
    :class:`repro.config.WorldConfig`) so that cache keys and the
    cross-process world memo agree on the same identity.
    """
    digest = getattr(config, "digest", None)
    if callable(digest):
        return digest()
    if not is_dataclass(config):
        raise ValidationError(
            f"config_digest expects a dataclass, got {type(config).__name__}"
        )
    payload = json.dumps(asdict(config), sort_keys=True, default=str)
    return _blake(type(config).__name__, payload)


def _callable_source(fn: Any) -> str:
    try:
        return inspect.getsource(fn)
    except (OSError, TypeError):
        # Builtins / C callables / interactively-defined functions have
        # no retrievable source; fall back to their qualified name so
        # the salt is still stable within a code version.
        return getattr(fn, "__qualname__", repr(fn))


def stage_code_salt(spec: Any, module_footprint_salt: str = "") -> str:
    """Salt for one stage's own code: plan/run/merge source + version.

    ``module_footprint_salt`` folds in the digest of every module the
    stage's code can transitively reach (see
    :mod:`repro.runtime.footprint`): editing a helper in e.g.
    ``core/classify.py`` then changes the salt even though the stage's
    own plan/run/merge source is untouched — the stale-cache hazard the
    C401 lint rule guards statically is thereby closed at runtime too.
    An empty footprint salt reproduces the PR-3 salt exactly, so
    footprint-less callers (unit tests over synthetic specs) stay
    valid.
    """
    parts = [
        spec.name,
        spec.version,
        _callable_source(spec.plan),
        _callable_source(spec.run),
        _callable_source(spec.merge),
    ]
    if module_footprint_salt:
        parts.append(module_footprint_salt)
    return _blake(*parts)


def effective_salts(
    graph: Any, footprints: Optional[Dict[str, str]] = None
) -> Dict[str, str]:
    """Fold each stage's code salt with its dependencies' effective salts.

    ``footprints`` optionally maps stage names to module-footprint salts
    (missing stages fold an empty footprint).
    """
    salts: Dict[str, str] = {}
    for spec in graph.stages:
        footprint = footprints.get(spec.name, "") if footprints else ""
        own = stage_code_salt(spec, footprint)
        dep_salts = [salts[dep] for dep in spec.inputs]
        salts[spec.name] = _blake(own, *dep_salts)
    return salts


class ArtifactCache:
    """Per-shard pickle store addressed by content key.

    ``cache_dir=None`` disables persistence entirely: every lookup is
    a miss and stores are no-ops, which keeps the executor code free
    of cache conditionals.
    """

    def __init__(self, cache_dir: Optional[str]) -> None:
        self._root = cache_dir
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        return self._root is not None

    @property
    def root(self) -> Optional[str]:
        """The cache directory (``None`` when persistence is disabled)."""
        return self._root

    def key(self, config_dig: str, salt: str, stage: str, shard_key: str) -> str:
        return _blake(config_dig, salt, stage, shard_key)

    def _path(self, stage: str, key: str) -> str:
        # One directory per stage keeps listings small and makes
        # `du -sh cache/<stage>` a useful profiling tool.
        return os.path.join(str(self._root), stage, f"{key}.pkl")

    def load(self, stage: str, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, artifact)``; corrupt artifacts count as misses."""
        if self._root is None:
            self.misses += 1
            return False, None
        path = self._path(stage, key)
        try:
            with open(path, "rb") as fh:
                artifact = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except (pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            # Truncated or stale-format artifact: recompute and overwrite.
            # The corrupt counter is ambient (no-op outside a collection
            # scope) and fires only on genuinely damaged files, so it
            # never perturbs the worker-count-invariance of a healthy
            # run's registry.
            obs_metrics.inc(obs_names.RUNTIME_CACHE_CORRUPT, stage=stage)
            self.misses += 1
            return False, None
        self.hits += 1
        return True, artifact

    def store(self, stage: str, key: str, artifact: Any) -> None:
        if self._root is None:
            return
        path = self._path(stage, key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        # The temp name must be unique per *writer*, not just per
        # process: the serve job pool runs concurrent engine runs on
        # threads of one process, and two threads sharing a pid-only
        # suffix would interleave writes into the same temp file and
        # publish a corrupt artifact.  pid + thread id keeps the
        # write-temp-then-rename slot exclusive in both worlds.
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "wb") as fh:
            pickle.dump(artifact, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
