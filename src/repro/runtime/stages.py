"""The pipeline's stages as runtime graph nodes.

Each stage gets three module-level functions — ``plan`` / ``run`` /
``merge`` — registered into :data:`STAGE_GRAPH`.  Shard axes follow the
natural unit of independence in the paper's pipeline:

========================  =================  =================================
stage                     axis               shard product
========================  =================  =================================
``panel``                 users              visits, requests, pdns pairs
``classification``        users              per-request stage labels
``inventory``             tracker domains    partial :class:`TrackerIPInventory`
``geolocation``           IPs                address → country table
``confinement``           flows              Sankey count matrices
``localization``          flows              per-scenario (n, ok, ok) counts
``sensitive_domains``     (single shard)     identified sensitive domains
``sensitive``             flows              category / region / country counts
``ispscale``              ISPs               per-snapshot reports
========================  =================  =================================

Every ``run`` treats the world as **read-only**: randomness comes from
``world.streams.spawn("runtime:...")`` derivations keyed on the shard,
DNS resolution goes through shard-local :class:`MappingService` clones
writing into shard-local passive-DNS collectors, and the active
geolocation engine runs with a per-address campaign seed.  That is what
makes shard products — and therefore the merged stage products —
independent of worker count and of execution order.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.config import SNAPSHOT_DAYS
from repro.core.classify import (
    ClassificationStage,
    RequestClassifier,
)
from repro.core.confinement import ConfinementAnalyzer
from repro.core.ispscale import ISPScaleStudy
from repro.core.localization import LocalizationAnalyzer, LocalizationScenario
from repro.core.sensitive import SensitiveStudy
from repro.core.tracker_ips import TrackerIPInventory
from repro.datasets.builder import BACKGROUND_END_DAY, World
from repro.dnssim.passive import PassiveDNSDatabase
from repro.errors import ExecutionError
from repro.geodata.regions import Region, region_of_country
from repro.geoloc.ipmap import IPmapEngine
from repro.netbase.addr import IPAddress
from repro.runtime.graph import ShardAxis, StageGraph, StageSpec, partition
from repro.util.rng import derive_seed
from repro.util.sankey import Sankey
from repro.web.browser import BrowserExtensionSimulator, MappingService
from repro.web.requests import ThirdPartyRequest

#: canonical shard fan-out per stage; a pure constant (never derived from
#: worker count) so the shard set is identical for any parallelism level
DEFAULT_SHARDS = 8

#: the geolocation tools whose confinement views the engine materializes
GEO_TOOLS = ("RIPE IPmap", "MaxMind", "ip-api")

#: the inventory's passive-DNS completion window (matches ``Study``)
_PDNS_WINDOW = (0.0, BACKGROUND_END_DAY)


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------

def campaign_engine(world: World) -> IPmapEngine:
    """A fresh active-geolocation engine with per-address campaigns.

    Seeding campaigns by ``(config seed, address)`` — instead of the
    serial engine's draw-order-dependent ``spawn_rng`` — makes every
    estimate a pure function of the world, so the IP axis can be
    sharded freely.
    """
    return IPmapEngine(
        mesh=world.probes,
        oracle=world.oracle,
        registry=world.registry,
        config=world.config.geolocation,
        streams=world.streams.spawn("runtime:ipmap"),
        campaign_seed=derive_seed(world.config.seed, "runtime:ipmap-campaign"),
    )


class GeoTableLocator:
    """Reference locator backed by the geolocation stage's table.

    Inventory addresses resolve via dictionary lookup (the persisted
    stage product); anything outside the table falls back to a live
    engine seeded identically to the one that built the table, so the
    answer is the same one the geolocation stage would have produced.
    """

    def __init__(self, world: World, table: Mapping[IPAddress, Optional[str]]) -> None:
        self._world = world
        self._table = dict(table)
        self._engine: Optional[IPmapEngine] = None

    def locate(self, address: IPAddress) -> Optional[str]:
        if address in self._table:
            return self._table[address]
        if self._engine is None:
            self._engine = campaign_engine(self._world)
        return self._engine.locate(address)

    def __call__(self, address: IPAddress) -> Optional[str]:
        return self.locate(address)


def _locator_for(world: World, products: Mapping[str, Any], tool: str):
    """The per-tool locator runtime stages evaluate flows against."""
    if tool == "RIPE IPmap":
        return GeoTableLocator(world, products["geolocation"]["table"])
    if tool == "MaxMind":
        return world.maxmind.locate
    if tool == "ip-api":
        return world.ip_api.locate
    raise ExecutionError(f"unknown geolocation tool {tool!r}")


def _tracking_requests(products: Mapping[str, Any]) -> List[ThirdPartyRequest]:
    requests = products["panel"]["requests"]
    stages = products["classification"]["stages"]
    if len(requests) != len(stages):
        raise ExecutionError(
            "classification stages misaligned with panel requests: "
            f"{len(stages)} labels for {len(requests)} requests"
        )
    return [
        request
        for request, stage in zip(requests, stages)
        if stage.is_tracking
    ]


def _user_block(world: World, payload: Tuple[int, int]) -> List[int]:
    lo, hi = payload
    return [user.user_id for user in world.users[lo:hi]]


# ---------------------------------------------------------------------------
# stage 1: panel
# ---------------------------------------------------------------------------

def panel_plan(world: World, products: Mapping[str, Any]) -> List[Tuple[str, Any]]:
    return [
        (f"users[{lo}:{hi}]", (lo, hi))
        for lo, hi in partition(world.users, DEFAULT_SHARDS)
    ]


def panel_run(
    world: World, products: Mapping[str, Any], shard_key: str, payload: Any
) -> Any:
    lo, hi = payload
    # A shard-local mapping clone: fresh answer cache, shard-derived DNS
    # stream, shard-local passive-DNS collector.  The shared world
    # mapping is never touched, so shards cannot observe each other.
    local_pdns = PassiveDNSDatabase(name=f"runtime-{shard_key}")
    mapping = MappingService(
        world.fleet,
        world.registry,
        local_pdns,
        world.streams.spawn(f"runtime:{shard_key}"),
    )
    simulator = BrowserExtensionSimulator(
        fleet=world.fleet,
        publishers=world.publishers,
        users=world.users[lo:hi],
        panel_config=world.config.panel,
        browsing_config=world.config.browsing,
        registry=world.registry,
        mapping=mapping,
        streams=world.streams,  # per-user forks are stateless derivations
    )
    log = simulator.simulate()
    return {
        "visits": log.visits,
        "requests": log.requests,
        "pdns_pairs": local_pdns.pairs(),
    }


def panel_merge(
    world: World,
    products: Mapping[str, Any],
    results: List[Tuple[str, Any]],
) -> Any:
    visits: List[Any] = []
    requests: List[ThirdPartyRequest] = []
    pairs: List[Tuple[Any, ...]] = []
    for _, shard in results:
        visits.extend(shard["visits"])
        requests.extend(shard["requests"])
        pairs.extend(shard["pdns_pairs"])
    return {"visits": visits, "requests": requests, "pdns_pairs": pairs}


# ---------------------------------------------------------------------------
# stage 2: classification
# ---------------------------------------------------------------------------

def classification_plan(
    world: World, products: Mapping[str, Any]
) -> List[Tuple[str, Any]]:
    # Same user partition as the panel: referrer chains never span users
    # (URLs carry per-user tokens), so the closure is complete per shard.
    return [
        (f"users[{lo}:{hi}]", (lo, hi))
        for lo, hi in partition(world.users, DEFAULT_SHARDS)
    ]


def classification_run(
    world: World, products: Mapping[str, Any], shard_key: str, payload: Any
) -> Any:
    user_ids = set(_user_block(world, payload))
    subset = [
        request
        for request in products["panel"]["requests"]
        if request.user_id in user_ids
    ]
    classifier = RequestClassifier(world.easylist, world.easyprivacy)
    result = classifier.classify(subset)
    return {"stages": result.stages, "n_requests": len(subset)}


def classification_merge(
    world: World,
    products: Mapping[str, Any],
    results: List[Tuple[str, Any]],
) -> Any:
    stages: List[ClassificationStage] = []
    for _, shard in results:
        stages.extend(shard["stages"])
    n_requests = len(products["panel"]["requests"])
    if len(stages) != n_requests:
        raise ExecutionError(
            f"classification produced {len(stages)} labels for "
            f"{n_requests} panel requests"
        )
    return {"stages": stages}


# ---------------------------------------------------------------------------
# stage 3: tracker-IP inventory
# ---------------------------------------------------------------------------

def _tracking_fqdns(products: Mapping[str, Any]) -> List[str]:
    return sorted({r.fqdn for r in _tracking_requests(products)})


def inventory_plan(
    world: World, products: Mapping[str, Any]
) -> List[Tuple[str, Any]]:
    fqdns = _tracking_fqdns(products)
    return [
        (f"fqdns[{lo}:{hi}]", (lo, hi))
        for lo, hi in partition(fqdns, DEFAULT_SHARDS)
    ]


def _runtime_pdns(world: World, products: Mapping[str, Any]) -> PassiveDNSDatabase:
    """The complete passive-DNS view: background + panel observations."""
    pdns = PassiveDNSDatabase(name="runtime-pdns")
    pdns.merge(world.pdns)
    pdns.observe_pairs(products["panel"]["pdns_pairs"])
    return pdns


def inventory_run(
    world: World, products: Mapping[str, Any], shard_key: str, payload: Any
) -> Any:
    lo, hi = payload
    group = set(_tracking_fqdns(products)[lo:hi])
    subset = [r for r in _tracking_requests(products) if r.fqdn in group]
    pdns = _runtime_pdns(world, products)
    partial = TrackerIPInventory()
    partial.ingest_panel(subset)
    partial.complete_from_pdns(pdns, _PDNS_WINDOW)
    partial.annotate_windows(pdns)
    partial.annotate_dedication(pdns, _PDNS_WINDOW)
    return partial


def inventory_merge(
    world: World,
    products: Mapping[str, Any],
    results: List[Tuple[str, Any]],
) -> Any:
    merged = TrackerIPInventory()
    for _, partial in results:
        merged.merge_from(partial)
    return merged


# ---------------------------------------------------------------------------
# stage 4: geolocation
# ---------------------------------------------------------------------------

def geolocation_plan(
    world: World, products: Mapping[str, Any]
) -> List[Tuple[str, Any]]:
    addresses = products["inventory"].addresses()
    return [
        (f"ips[{lo}:{hi}]", (lo, hi))
        for lo, hi in partition(addresses, DEFAULT_SHARDS)
    ]


def geolocation_run(
    world: World, products: Mapping[str, Any], shard_key: str, payload: Any
) -> Any:
    lo, hi = payload
    addresses = products["inventory"].addresses()[lo:hi]
    engine = campaign_engine(world)
    table: Dict[IPAddress, Optional[str]] = {}
    agreement: Dict[IPAddress, float] = {}
    for address in addresses:
        estimate = engine.geolocate(address)
        table[address] = engine.locate(address)
        agreement[address] = estimate.country_agreement
    return {"table": table, "agreement": agreement}


def geolocation_merge(
    world: World,
    products: Mapping[str, Any],
    results: List[Tuple[str, Any]],
) -> Any:
    table: Dict[IPAddress, Optional[str]] = {}
    agreement: Dict[IPAddress, float] = {}
    for _, shard in results:
        table.update(shard["table"])
        agreement.update(shard["agreement"])
    return {"table": table, "agreement": agreement}


# ---------------------------------------------------------------------------
# stages 5-6: confinement / localization (flow axes)
# ---------------------------------------------------------------------------

def _flow_plan(world: World, products: Mapping[str, Any]) -> List[Tuple[str, Any]]:
    flows = _tracking_requests(products)
    return [
        (f"flows[{lo}:{hi}]", (lo, hi))
        for lo, hi in partition(flows, DEFAULT_SHARDS)
    ]


def confinement_plan(
    world: World, products: Mapping[str, Any]
) -> List[Tuple[str, Any]]:
    return _flow_plan(world, products)


def confinement_run(
    world: World, products: Mapping[str, Any], shard_key: str, payload: Any
) -> Any:
    lo, hi = payload
    subset = _tracking_requests(products)[lo:hi]
    eu28 = [
        r
        for r in subset
        if region_of_country(r.user_country, world.registry) is Region.EU28
    ]
    eu28_by_tool: Dict[str, Sankey] = {}
    for tool in GEO_TOOLS:
        analyzer = ConfinementAnalyzer(
            _locator_for(world, products, tool), world.registry
        )
        eu28_by_tool[tool] = analyzer.continent_sankey(eu28)
    reference = ConfinementAnalyzer(
        _locator_for(world, products, "RIPE IPmap"), world.registry
    )
    return {
        "eu28": eu28_by_tool,
        "regions": reference.continent_sankey(subset),
        "countries": reference.country_sankey(subset, Region.EU28),
    }


def confinement_merge(
    world: World,
    products: Mapping[str, Any],
    results: List[Tuple[str, Any]],
) -> Any:
    eu28 = {tool: Sankey() for tool in GEO_TOOLS}
    regions = Sankey()
    countries = Sankey()
    for _, shard in results:
        for tool in GEO_TOOLS:
            eu28[tool].merge(shard["eu28"][tool])
        regions.merge(shard["regions"])
        countries.merge(shard["countries"])
    return {"eu28": eu28, "regions": regions, "countries": countries}


#: Table 5 scenario order plus the extreme migration case
_SCENARIOS = (
    LocalizationScenario.DEFAULT,
    LocalizationScenario.REDIRECT_FQDN,
    LocalizationScenario.REDIRECT_TLD,
    LocalizationScenario.POP_MIRRORING,
    LocalizationScenario.REDIRECT_TLD_PLUS_MIRRORING,
    LocalizationScenario.CLOUD_MIGRATION,
)


def localization_plan(
    world: World, products: Mapping[str, Any]
) -> List[Tuple[str, Any]]:
    return _flow_plan(world, products)


def localization_run(
    world: World, products: Mapping[str, Any], shard_key: str, payload: Any
) -> Any:
    lo, hi = payload
    subset = _tracking_requests(products)[lo:hi]
    analyzer = LocalizationAnalyzer(
        inventory=products["inventory"],
        locate=_locator_for(world, products, "RIPE IPmap"),
        clouds=world.clouds,
        registry=world.registry,
    )
    return {
        scenario.name: analyzer.scenario_counts(subset, scenario)
        for scenario in _SCENARIOS
    }


def localization_merge(
    world: World,
    products: Mapping[str, Any],
    results: List[Tuple[str, Any]],
) -> Any:
    counts = {scenario.name: (0, 0, 0) for scenario in _SCENARIOS}
    for _, shard in results:
        for name, (n, country_ok, region_ok) in shard.items():
            base = counts[name]
            counts[name] = (
                base[0] + n,
                base[1] + country_ok,
                base[2] + region_ok,
            )
    return {"counts": counts}


# ---------------------------------------------------------------------------
# stage 7a: sensitive-domain identification (single shard)
# ---------------------------------------------------------------------------

def sensitive_domains_plan(
    world: World, products: Mapping[str, Any]
) -> List[Tuple[str, Any]]:
    return [("all", None)]


def sensitive_domains_run(
    world: World, products: Mapping[str, Any], shard_key: str, payload: Any
) -> Any:
    study = SensitiveStudy(
        publishers=world.publishers,
        streams=world.streams.spawn("runtime:sensitive"),
        registry=world.registry,
    )
    identified = study.identify(
        visit.publisher_domain for visit in products["panel"]["visits"]
    )
    return {"identified": identified}


def sensitive_domains_merge(
    world: World,
    products: Mapping[str, Any],
    results: List[Tuple[str, Any]],
) -> Any:
    return results[0][1]


# ---------------------------------------------------------------------------
# stage 7b: sensitive flow analyses (flow axis)
# ---------------------------------------------------------------------------

def sensitive_plan(
    world: World, products: Mapping[str, Any]
) -> List[Tuple[str, Any]]:
    return _flow_plan(world, products)


def sensitive_run(
    world: World, products: Mapping[str, Any], shard_key: str, payload: Any
) -> Any:
    lo, hi = payload
    subset = _tracking_requests(products)[lo:hi]
    study = SensitiveStudy.from_identified(
        world.publishers,
        products["sensitive_domains"]["identified"],
        registry=world.registry,
    )
    locate = _locator_for(world, products, "RIPE IPmap")
    analyzer = ConfinementAnalyzer(locate, world.registry)
    categories: Dict[str, int] = {}
    category_regions: Dict[Tuple[str, str], int] = {}
    leakage: Dict[str, Tuple[int, int]] = {}
    sensitive_requests = study.sensitive_requests(subset)
    for request in sensitive_requests:
        category = study.category_of(request)
        if category is None:
            raise ExecutionError(
                f"sensitive request {request.url!r} lost its category"
            )
        categories[category] = categories.get(category, 0) + 1
        if (
            region_of_country(request.user_country, world.registry)
            is not Region.EU28
        ):
            continue
        destination_country = analyzer.destination_country(request.ip)
        destination = (
            region_of_country(destination_country, world.registry).value
            if destination_country is not None
            else Region.UNKNOWN.value
        )
        key = (category, destination)
        category_regions[key] = category_regions.get(key, 0) + 1
        leaked, total = leakage.get(request.user_country, (0, 0))
        leakage[request.user_country] = (
            leaked + (1 if destination_country != request.user_country else 0),
            total + 1,
        )
    return {
        "n_tracking": len(subset),
        "n_sensitive": len(sensitive_requests),
        "categories": categories,
        "category_regions": category_regions,
        "leakage": leakage,
    }


def sensitive_merge(
    world: World,
    products: Mapping[str, Any],
    results: List[Tuple[str, Any]],
) -> Any:
    n_tracking = 0
    n_sensitive = 0
    categories: Dict[str, int] = {}
    category_regions: Dict[Tuple[str, str], int] = {}
    leakage: Dict[str, Tuple[int, int]] = {}
    for _, shard in results:
        n_tracking += shard["n_tracking"]
        n_sensitive += shard["n_sensitive"]
        for category, count in sorted(shard["categories"].items()):
            categories[category] = categories.get(category, 0) + count
        for key, count in sorted(shard["category_regions"].items()):
            category_regions[key] = category_regions.get(key, 0) + count
        for country, (leaked, total) in sorted(shard["leakage"].items()):
            base = leakage.get(country, (0, 0))
            leakage[country] = (base[0] + leaked, base[1] + total)
    return {
        "n_tracking": n_tracking,
        "n_sensitive": n_sensitive,
        "categories": categories,
        "category_regions": category_regions,
        "leakage": leakage,
        "identified": products["sensitive_domains"]["identified"],
    }


# ---------------------------------------------------------------------------
# stage 8: ISP scale
# ---------------------------------------------------------------------------

def ispscale_plan(
    world: World, products: Mapping[str, Any]
) -> List[Tuple[str, Any]]:
    return [
        (f"isp:{name}", name) for name in sorted(world.synthesizers)
    ]


def ispscale_run(
    world: World, products: Mapping[str, Any], shard_key: str, payload: Any
) -> Any:
    isp_name = payload
    study = ISPScaleStudy(
        synthesizers=world.synthesizers,
        isps=world.isps,
        inventory=products["inventory"],
        locate=_locator_for(world, products, "RIPE IPmap"),
        config=world.config.isp,
        registry=world.registry,
    )
    shard_streams = world.streams.spawn(f"runtime:{shard_key}")
    mapping = MappingService(
        world.fleet,
        world.registry,
        PassiveDNSDatabase(name=f"runtime-{shard_key}"),
        shard_streams,
    )
    reports = {}
    for snapshot in SNAPSHOT_DAYS:
        reports[(isp_name, snapshot)] = study.run_snapshot(
            isp_name,
            snapshot,
            rng=shard_streams.fork(f"snapshot:{snapshot}"),
            mapping=mapping,
        )
    return reports


def ispscale_merge(
    world: World,
    products: Mapping[str, Any],
    results: List[Tuple[str, Any]],
) -> Any:
    merged = {}
    for _, shard in results:
        merged.update(shard)
    return merged


# ---------------------------------------------------------------------------
# provenance: record counts per stage product
# ---------------------------------------------------------------------------

def product_record_counts(stage: str, product: Any) -> Dict[str, int]:
    """Named record counts of one stage's *merged* product.

    Used by the provenance manifest to state, per stage, how many
    records flowed in and out — e.g. the panel's visit/request/pdns-pair
    totals or the geolocation table's address count.  A pure inspection
    of the product: calling it never perturbs a run.
    """
    if stage == "panel":
        return {
            "visits": len(product["visits"]),
            "requests": len(product["requests"]),
            "pdns_pairs": len(product["pdns_pairs"]),
        }
    if stage == "classification":
        return {"stages": len(product["stages"])}
    if stage == "inventory":
        return {"tracker_ips": len(product)}
    if stage == "geolocation":
        return {"addresses": len(product["table"])}
    if stage == "confinement":
        return {
            "region_flows": int(product["regions"].total),
            "eu28_country_flows": int(product["countries"].total),
        }
    if stage == "localization":
        counts = product["counts"]
        default = counts.get(LocalizationScenario.DEFAULT.name, (0, 0, 0))
        return {"scenarios": len(counts), "default_flows": default[0]}
    if stage == "sensitive_domains":
        return {"identified_domains": len(product["identified"])}
    if stage == "sensitive":
        return {
            "tracking_flows": product["n_tracking"],
            "sensitive_flows": product["n_sensitive"],
        }
    if stage == "ispscale":
        return {"snapshot_reports": len(product)}
    raise ExecutionError(f"no record-count rule for stage {stage!r}")


# ---------------------------------------------------------------------------
# the graph
# ---------------------------------------------------------------------------

def build_stage_graph() -> StageGraph:
    """The paper pipeline as a declarative stage graph."""
    graph = StageGraph()
    graph.add(StageSpec(
        name="panel",
        axis=ShardAxis.USERS,
        inputs=(),
        outputs=("visits", "requests", "pdns_pairs"),
        plan=panel_plan,
        run=panel_run,
        merge=panel_merge,
    ))
    graph.add(StageSpec(
        name="classification",
        axis=ShardAxis.USERS,
        inputs=("panel",),
        outputs=("stages",),
        plan=classification_plan,
        run=classification_run,
        merge=classification_merge,
    ))
    graph.add(StageSpec(
        name="inventory",
        axis=ShardAxis.TRACKER_DOMAINS,
        inputs=("panel", "classification"),
        outputs=("inventory",),
        plan=inventory_plan,
        run=inventory_run,
        merge=inventory_merge,
    ))
    graph.add(StageSpec(
        name="geolocation",
        axis=ShardAxis.IPS,
        inputs=("inventory",),
        outputs=("table", "agreement"),
        plan=geolocation_plan,
        run=geolocation_run,
        merge=geolocation_merge,
    ))
    graph.add(StageSpec(
        name="confinement",
        axis=ShardAxis.FLOWS,
        inputs=("panel", "classification", "geolocation"),
        outputs=("eu28", "regions", "countries"),
        plan=confinement_plan,
        run=confinement_run,
        merge=confinement_merge,
    ))
    graph.add(StageSpec(
        name="localization",
        axis=ShardAxis.FLOWS,
        inputs=("panel", "classification", "inventory", "geolocation"),
        outputs=("counts",),
        plan=localization_plan,
        run=localization_run,
        merge=localization_merge,
    ))
    graph.add(StageSpec(
        name="sensitive_domains",
        axis=ShardAxis.NONE,
        inputs=("panel",),
        outputs=("identified",),
        plan=sensitive_domains_plan,
        run=sensitive_domains_run,
        merge=sensitive_domains_merge,
    ))
    graph.add(StageSpec(
        name="sensitive",
        axis=ShardAxis.FLOWS,
        inputs=("panel", "classification", "geolocation", "sensitive_domains"),
        outputs=(
            "n_tracking", "n_sensitive", "categories",
            "category_regions", "leakage", "identified",
        ),
        plan=sensitive_plan,
        run=sensitive_run,
        merge=sensitive_merge,
    ))
    graph.add(StageSpec(
        name="ispscale",
        axis=ShardAxis.ISPS,
        inputs=("inventory", "geolocation"),
        outputs=("reports",),
        plan=ispscale_plan,
        run=ispscale_run,
        merge=ispscale_merge,
    ))
    return graph


#: the canonical graph instance used by the engine and the CLI
STAGE_GRAPH = build_stage_graph()

#: stage names in topological order
STAGE_NAMES = tuple(spec.name for spec in STAGE_GRAPH.stages)
