"""Benchmark: how fast a GDPR-friendly DNS redirection would take effect
across the tracking FQDN population (Sect. 5.1's TTL argument)."""

from repro.dnssim.cache import propagation_profile


def test_redirection_propagation(benchmark, study, save_artifact):
    services = [
        deployed.service
        for deployed in study.world.fleet.tracking_fqdns()
    ]

    profile = benchmark.pedantic(
        propagation_profile, args=(services,), rounds=1, iterations=1
    )
    lines = [
        f"after {int(deadline):>6}s: {share:6.1%} of clients redirected"
        for deadline, share in profile
    ]
    save_artifact("redirection_propagation", "\n".join(lines))

    shares = dict(profile)
    # Paper: "DNS redirection can take place in relatively small time
    # scale, from seconds to a few hours."
    assert shares[300] > 0.03          # some clients within five minutes
    assert shares[7200] > 0.85         # nearly everyone within two hours
    assert shares[86400] == 1.0        # complete within a day
    values = [share for _, share in profile]
    assert values == sorted(values)
