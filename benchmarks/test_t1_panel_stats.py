"""Table 1 — the real-users dataset statistics."""

from repro.analysis.tables import table1


def test_t1_panel_stats(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        table1, args=(study,), rounds=1, iterations=1
    )
    save_artifact("table1", artifact["text"])
    # Paper: 350 users, 5,693 1st-party domains, 76,507 visits, 19,298
    # 3rd-party domains, 7.17M 3rd-party requests (we run a scaled world;
    # the structure, not the absolute counts, must match).
    assert artifact["users"] == 350
    assert artifact["first_party_domains"] < artifact["first_party_requests"]
    assert artifact["third_party_domains"] < artifact["third_party_requests"]
    # Third-party requests dominate first-party page loads by >10x.
    assert (
        artifact["third_party_requests"]
        > 10 * artifact["first_party_requests"]
    )
