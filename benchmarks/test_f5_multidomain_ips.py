"""Figure 5 — IPs hosting 10+ ad/tracking domains and their locations."""

from repro.analysis.figures import figure5
from repro.geodata.regions import Region


def test_f5_multidomain_ips(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        figure5, args=(study,), rounds=1, iterations=1
    )
    save_artifact("figure5", artifact["text"])
    heavy = artifact["heavy_ips"]
    # Paper: 114 such IPs at full scale; a scaled world has fewer but
    # the population must exist.
    assert len(heavy) >= 3
    assert all(record.n_domains_behind >= 10 for record in heavy)
    # Paper: about half of them sit in the USA and EU28 (ad exchange
    # hubs / cookie-sync infrastructure).
    by_region = artifact["by_region"]
    us_eu = by_region.get(Region.NORTH_AMERICA.value, 0) + by_region.get(
        Region.EU28.value, 0
    )
    assert us_eu / len(heavy) > 0.5
