"""Figure 11 — per-country leakage of sensitive tracking flows."""

from repro.analysis.figures import figure11


def test_f11_sensitive_countries(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        figure11, args=(study,), rounds=1, iterations=1
    )
    save_artifact("figure11", artifact["text"])
    leakage = artifact["leakage"]
    assert leakage

    # Every (leaked, total) pair is consistent.
    for leaked, total in leakage.values():
        assert 0 <= leaked <= total

    # Paper: small/IT-sparse countries (CY, GR, DK, RO) leak nearly all
    # their sensitive flows; IT-dense countries retain a visible share.
    def leak_pct(country):
        leaked, total = leakage.get(country, (0, 0))
        return 100.0 * leaked / total if total else None

    small = [p for p in (leak_pct("CY"), leak_pct("PL")) if p is not None]
    big = [p for p in (leak_pct("DE"), leak_pct("GB"), leak_pct("ES"))
           if p is not None]
    assert small and big
    assert min(small) > 85.0
    assert min(big) < min(small)
