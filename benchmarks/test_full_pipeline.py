"""End-to-end benchmarks: world construction, panel simulation,
classification throughput, geolocation throughput, and the full
paper-vs-measured report."""


from repro import Study, WorldConfig
from repro.analysis.report import paper_vs_measured
from repro.core.classify import RequestClassifier
from repro.datasets.builder import build_world


def test_world_build_small(benchmark):
    """Cost of constructing a complete (small) world from one seed."""
    world = benchmark.pedantic(
        build_world, args=(WorldConfig.small(seed=123),),
        rounds=1, iterations=1,
    )
    assert world.fleet.servers()


def test_panel_simulation_small(benchmark):
    """Cost of simulating the full browser-extension panel."""
    study = Study(WorldConfig.small(seed=321))

    def run():
        return study.visit_log

    log = benchmark.pedantic(run, rounds=1, iterations=1)
    assert log.third_party_requests() > 0


def test_classification_throughput(benchmark, study):
    """Requests/second of the three-stage classifier (medium log)."""
    classifier = RequestClassifier(
        study.world.easylist, study.world.easyprivacy
    )
    requests = study.visit_log.requests

    result = benchmark.pedantic(
        classifier.classify, args=(requests,), rounds=1, iterations=1
    )
    assert result.n_tracking() > 0


def test_geolocation_throughput(benchmark, study):
    """Active-measurement campaigns per second (fresh engine, 150 IPs)."""
    from repro.geoloc.ipmap import IPmapEngine

    engine = IPmapEngine(
        mesh=study.world.probes,
        oracle=study.world.oracle,
        registry=study.world.registry,
        config=study.config.geolocation,
        streams=study.world.streams.spawn("bench-ipmap"),
    )
    addresses = study.inventory.addresses()[:150]

    def run():
        return [engine.geolocate(a) for a in addresses]

    estimates = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(estimates) == len(addresses)


def test_paper_vs_measured_report(benchmark, study, save_artifact):
    """The consolidated paper-vs-measured block (EXPERIMENTS.md input)."""
    block = benchmark.pedantic(
        paper_vs_measured, args=(study,), rounds=1, iterations=1
    )
    save_artifact("paper_vs_measured", block)
    assert "f7_ipmap_eu28_pct" in block
