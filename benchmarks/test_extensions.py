"""Benchmarks for the paper's future-work extensions implemented here:
the inter-tracker collaboration graph and the multi-regulation monitor."""

from repro.core.collaboration import CollaborationAnalyzer
from repro.core.regulations import RegulationMonitor


def test_collaboration_graph(benchmark, study, save_artifact):
    def build():
        analyzer = CollaborationAnalyzer(
            study.classification, study.geolocation.reference
        )
        return analyzer, analyzer.summary()

    analyzer, summary = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = [f"{key}: {value:.2f}" for key, value in sorted(summary.items())]
    lines.append("top hand-off edges:")
    for source, target, weight in analyzer.top_collaborations(8):
        lines.append(f"  {source} -> {target}: {weight:,}")
    lines.append("top identifier sinks (in-degree):")
    for domain, degree in analyzer.hubs(8):
        lines.append(f"  {domain}: {degree} partners")
    save_artifact("collaboration_graph", "\n".join(lines))

    # Cookie syncing binds the ecosystem into one dominant component...
    assert summary["giant_component_share"] > 0.6
    # ...and a substantial share of identifier hand-offs cross borders —
    # the data-exchange dimension the endpoint analysis cannot see.
    assert summary["cross_border_share_pct"] > 25.0
    assert summary["hand_offs"] > 10_000


def test_regulation_monitor(benchmark, study, save_artifact):
    monitor = RegulationMonitor(
        study.geolocation.reference,
        sensitive=study.sensitive,
        registry=study.world.registry,
    )
    tracking = study.tracking_requests()

    reports = benchmark.pedantic(
        monitor.evaluate_all, args=(tracking,), rounds=1, iterations=1
    )
    lines = []
    for name, report in sorted(reports.items()):
        lines.append(
            f"{name}: in-scope={report.in_scope_flows:,} "
            f"confined={report.confinement_pct:.1f}% "
            f"investigable={report.investigable}"
        )
    save_artifact("regulation_monitor", "\n".join(lines))

    gdpr = reports["GDPR"]
    national = reports["BDSG (DE national scope)"]
    assert gdpr.confinement_pct > 75.0
    assert gdpr.investigable
    # The paper's Sect. 2.1 point: national scopes reach far less.
    assert national.confinement_pct < gdpr.confinement_pct
    health = reports["Health-records (EU28)"]
    assert health.in_scope_flows < gdpr.in_scope_flows
