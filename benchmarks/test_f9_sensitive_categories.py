"""Figure 9 — sensitive-category shares of tracking flows."""

from repro.analysis.figures import figure9


def test_f9_sensitive_categories(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        figure9, args=(study,), rounds=1, iterations=1
    )
    save_artifact("figure9", artifact["text"])
    # Paper: sensitive flows are ~2.89% of tracking flows over 1,067
    # identified domains across 12 categories.
    assert 1.0 < artifact["sensitive_share_pct"] < 7.0
    assert artifact["n_sensitive_domains"] > 20
    shares = artifact["category_shares"]
    assert shares
    ranked = sorted(shares.items(), key=lambda kv: -kv[1])
    # Health and gambling lead the distribution (38% and 22%).
    assert ranked[0][0] in ("health", "gambling")
    top3 = {category for category, _ in ranked[:4]}
    assert "health" in top3
    assert "gambling" in top3
