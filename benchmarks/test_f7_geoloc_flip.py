"""Figure 7 — the geolocation flip: MaxMind vs RIPE IPmap for EU28."""

from repro.analysis.figures import figure7
from repro.geodata.regions import Region


def test_f7_geoloc_flip(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        figure7, args=(study,), rounds=1, iterations=1
    )
    save_artifact("figure7", artifact["text"])
    maxmind = artifact["maxmind"]
    ipmap = artifact["ipmap"]
    eu = Region.EU28.value
    na = Region.NORTH_AMERICA.value

    # Paper 7(b): under active geolocation ~85% of EU28 flows terminate
    # inside EU28 and ~11% in North America.
    assert 78.0 < ipmap[eu] < 95.0
    assert 3.0 < ipmap.get(na, 0.0) < 18.0

    # Paper 7(a): the commercial database flips the takeaway —
    # N. America appears dominant (65.94%) and EU28 minor (33.16%).
    assert maxmind.get(na, 0.0) > 50.0
    assert 20.0 < maxmind[eu] < 48.0
    assert maxmind[eu] < ipmap[eu] - 30.0
    assert maxmind[na] > ipmap[na] + 30.0
