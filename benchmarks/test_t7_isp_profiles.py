"""Table 7 — the four ISP profiles."""

from repro.analysis.tables import table7


def test_t7_isp_profiles(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        table7, args=(study,), rounds=1, iterations=1
    )
    save_artifact("table7", artifact["text"])
    isps = {isp.name: isp for isp in artifact["isps"]}
    assert set(isps) == {"DE-Broadband", "DE-Mobile", "PL", "HU"}
    assert isps["DE-Broadband"].subscribers_m >= 15
    assert isps["DE-Mobile"].subscribers_m >= 40
    assert isps["PL"].subscribers_m >= 11
    assert isps["HU"].subscribers_m >= 6
    assert isps["DE-Mobile"].is_mobile and isps["HU"].is_mobile
