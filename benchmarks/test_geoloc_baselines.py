"""Benchmark: the main active-geolocation engine against the classic
baselines it builds on (shortest ping, constraint-based geolocation)."""

from repro.geoloc.baselines import CBGLocator, ShortestPingLocator


def test_geolocation_algorithm_comparison(benchmark, study, save_artifact):
    world = study.world
    servers = world.fleet.servers()[:300]

    shortest = ShortestPingLocator(
        mesh=world.probes, oracle=world.oracle,
        config=study.config.geolocation,
        streams=world.streams.spawn("bench-sp"),
    )
    cbg = CBGLocator(
        mesh=world.probes, oracle=world.oracle, registry=world.registry,
        config=study.config.geolocation,
        streams=world.streams.spawn("bench-cbg"),
    )

    def accuracy(locate):
        return sum(
            1 for server in servers if locate(server.ip) == server.country
        ) / len(servers)

    def run():
        return {
            "shortest_ping": accuracy(shortest.locate),
            "cbg": accuracy(cbg.locate),
            "ipmap_engine": accuracy(world.ipmap.locate),
        }

    accuracies = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        "geoloc_baselines",
        "\n".join(
            f"{name}: {value:.1%} country accuracy "
            f"(n={len(servers)} servers)"
            for name, value in accuracies.items()
        ),
    )
    # The engine must dominate its building blocks (the reason the paper
    # uses RIPE IPmap rather than raw shortest-ping/CBG).
    assert accuracies["ipmap_engine"] >= accuracies["shortest_ping"]
    assert accuracies["ipmap_engine"] >= accuracies["cbg"] - 0.02
    assert accuracies["ipmap_engine"] > 0.9
