"""Table 6 — per-country improvements from mirroring / migration."""

from repro.analysis.tables import table6


def test_t6_country_improvements(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        table6, args=(study,), rounds=1, iterations=1
    )
    save_artifact("table6", artifact["text"])
    rows = {row["country"]: row for row in artifact["rows"]}
    assert rows
    # Paper: Cyprus cannot benefit — no public cloud operates there.
    if "CY" in rows:
        assert rows["CY"]["cloud_coverage"] is False
        assert rows["CY"]["migration_improvement_pct"] == 0.0
    # Paper: small covered countries (DK 96.85, GR 79.25, RO 72.12) gain
    # dramatically from full migration.
    covered = [r for r in rows.values() if r["cloud_coverage"]]
    assert max(r["migration_improvement_pct"] for r in covered) > 40.0
    # Mirroring alone is a much smaller lever than migration (<=5.5 in
    # the paper; we allow a loose band).
    for row in rows.values():
        assert (
            row["mirroring_improvement_pct"]
            <= row["migration_improvement_pct"] + 1e-9
        )
