"""Figure 8 — country-level flows for EU28 origins."""

from repro.analysis.figures import figure8


def test_f8_country_sankey(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        figure8, args=(study,), rounds=1, iterations=1
    )
    save_artifact("figure8", artifact["text"])
    national = artifact["national_confinement"]

    # Paper: large/IT-dense countries keep far more tracking at home
    # (UK 58.4%, ES 33.1%) than small ones (GR 6.77%, RO 5.1%, CY 1.16%).
    for big in ("GB", "DE", "ES"):
        assert national[big] > 20.0
    for small in ("CY", "PL"):
        assert national.get(small, 0.0) < 8.0
    assert national["GB"] > national.get("GR", 0.0)
    assert national["ES"] > national.get("CY", 0.0)

    # Destinations skew to IT-dense countries: NL/DE/IE/FR/GB absorb a
    # disproportionate share of the cross-border flows.
    sankey = artifact["sankey"]
    hub_total = sum(
        sankey.destination_total(hub) for hub in ("NL", "DE", "IE", "FR", "GB")
    )
    assert hub_total / sankey.total > 0.3
