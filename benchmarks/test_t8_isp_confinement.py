"""Table 8 — sampled tracking-flow statistics across the four ISPs and
the four snapshot days."""

from repro.analysis.tables import table8


def test_t8_isp_confinement(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        table8, args=(study,), rounds=1, iterations=1
    )
    save_artifact("table8", artifact["text"])
    reports = artifact["reports"]
    assert len(reports) == 16  # 4 ISPs x 4 days

    # Paper: EU28 confinement 74.7-93.1% across all cells; N. America is
    # the dominant leak; Asia / rest-world are ~1%.
    for (isp, snapshot), report in reports.items():
        eu = report.region_shares["EU 28"]
        assert 60.0 < eu < 99.0, (isp, snapshot, eu)
        assert report.region_shares["Asia"] < 5.0
        assert report.sampled_tracking_flows > 0
        assert report.estimated_tracking_flows > report.sampled_tracking_flows

    # Paper: Poland is the least-confined ISP within EU28.
    for snapshot in ("Nov 8", "April 4"):
        pl = reports[("PL", snapshot)].region_shares["EU 28"]
        others = [
            reports[(isp, snapshot)].region_shares["EU 28"]
            for isp in ("DE-Broadband", "DE-Mobile", "HU")
        ]
        assert pl < min(others) + 3.0

    # Confinement is stable across the GDPR implementation date.
    for isp in ("DE-Broadband", "DE-Mobile", "PL", "HU"):
        values = [
            reports[(isp, snap)].region_shares["EU 28"]
            for snap in ("Nov 8", "April 4", "May 16", "June 20")
        ]
        assert max(values) - min(values) < 12.0
