"""Table 2 — filter lists vs semi-automatic classification."""

from repro.analysis.tables import table2


def test_t2_classification(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        table2, args=(study,), rounds=1, iterations=1
    )
    save_artifact("table2", artifact["text"])
    # Paper: ABP 2.45M vs SEMI 1.96M requests (ratio 0.80); the
    # semi-automatic stage roughly doubles the detected tracking flows.
    assert 0.5 < artifact["semi_over_abp"] < 1.3
    assert artifact["total_requests"] == (
        artifact["abp_requests"] + artifact["semi_requests"]
    )
    # Both stages contribute distinct FQDN populations.
    assert artifact["semi_fqdns"] > 0.2 * artifact["abp_fqdns"]
