"""Benchmark for the temporal-variation analysis (the paper's
four-month continuous-monitoring angle)."""

from repro.analysis.temporal import (
    confinement_trend,
    discovery_saturation_day,
    trend_stability,
)


def test_temporal_trends(benchmark, study, save_artifact):
    tracking = study.tracking_requests()
    locate = study.geolocation.reference

    points = benchmark.pedantic(
        confinement_trend,
        args=(tracking, locate),
        kwargs={"bucket_days": 30.0},
        rounds=1,
        iterations=1,
    )
    saturation = discovery_saturation_day(study.inventory, coverage=0.9)
    lines = [
        f"{point.label}: EU28 confinement {point.confinement_pct:.2f}% "
        f"({point.n_flows:,} flows)"
        for point in points
    ]
    lines.append(f"stability (max-min): {trend_stability(points):.2f} points")
    lines.append(f"90% of tracker IPs known by day: {saturation}")
    save_artifact("temporal_trends", "\n".join(lines))

    # Paper: confinement is high and stable throughout the window.
    assert len(points) >= 3
    assert all(point.confinement_pct > 75.0 for point in points)
    assert trend_stability(points) < 10.0
    assert saturation is not None
