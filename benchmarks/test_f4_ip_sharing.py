"""Figure 4 — domains behind each tracking IP."""

from repro.analysis.figures import figure4


def test_f4_ip_sharing(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        figure4, args=(study,), rounds=1, iterations=1
    )
    save_artifact("figure4", artifact["text"])
    # Paper: ~85% of requests are served by IPs dedicated to one TLD;
    # fewer than 2% of IPs serve more than one domain.
    assert artifact["single_domain_request_share_pct"] > 75.0
    assert artifact["multi_domain_ip_share_pct"] < 3.0
    cdf = artifact["cdf"]
    assert cdf is not None
    assert cdf.evaluate(1) > 0.95
    assert cdf.max >= 5  # the sync-hub tail exists
