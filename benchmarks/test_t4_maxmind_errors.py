"""Table 4 — commercial mis-geolocation for the top ad providers."""

from repro.analysis.tables import table4


def test_t4_maxmind_errors(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        table4, args=(study,), rounds=1, iterations=1
    )
    save_artifact("table4", artifact["text"])
    rows = artifact["rows"]
    assert len(rows) == 3
    # Paper: 45-59% of the major providers' IPs land in the wrong
    # country under the commercial database.
    for row in rows:
        assert row.n_ips > 0
        assert row.wrong_country_ip_pct > 25.0
        assert row.wrong_country_ip_pct >= row.wrong_region_ip_pct
    # At least one hyperscaler-class provider is badly mis-geolocated.
    assert max(row.wrong_country_ip_pct for row in rows) > 45.0
