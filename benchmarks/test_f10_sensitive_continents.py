"""Figure 10 — destination continents per sensitive category."""


from repro.analysis.figures import figure10
from repro.geodata.regions import Region


def test_f10_sensitive_continents(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        figure10, args=(study,), rounds=1, iterations=1
    )
    save_artifact("figure10", artifact["text"])
    per_category = artifact["per_category"]
    assert per_category

    eu = Region.EU28.value
    # Paper: sensitive flows mirror the aggregate — mostly confined to
    # EU28 (84.9%) with N. America the main leak.
    weighted_eu = [shares.get(eu, 0.0) for shares in per_category.values()]
    assert sum(weighted_eu) / len(weighted_eu) > 60.0

    # Paper: the porn category leaks far more than the rest (44% out of
    # EU28) because adult ad networks are US-served.
    if "porn" in per_category:
        porn_leak = 100.0 - per_category["porn"].get(eu, 0.0)
        other_leaks = [
            100.0 - shares.get(eu, 0.0)
            for category, shares in per_category.items()
            if category != "porn"
        ]
        assert porn_leak > sum(other_leaks) / len(other_leaks)
