"""Figure 6 — flows between continents (the global Sankey)."""


from repro.analysis.figures import figure6
from repro.geodata.regions import Region


def test_f6_continent_sankey(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        figure6, args=(study,), rounds=1, iterations=1
    )
    save_artifact("figure6", artifact["text"])
    sankey = artifact["sankey"]
    eu = Region.EU28.value
    na = Region.NORTH_AMERICA.value
    sa = Region.SOUTH_AMERICA.value

    # Paper: EU28 flows overwhelmingly stay in EU28…
    assert sankey.confinement(eu) > 75.0
    # …while South American flows leak mostly to North America.
    sa_shares = sankey.origin_shares(sa)
    assert sa_shares.get(na, 0.0) > 55.0
    assert sa_shares.get(sa, 0.0) < 25.0

    # Paper: EU28 and N. America host most tracking backends
    # (51.65% + 40.87% of all terminations).
    destinations = artifact["destination_shares"]
    assert destinations[eu] + destinations[na] > 80.0
    assert destinations[eu] > destinations.get(Region.ASIA.value, 0.0)

    # Per-origin-region confinement/user counts are reported like the
    # paper's inline listing.
    per_region = artifact["per_region_confinement"]
    assert per_region[eu][1] == 183  # EU28 panel users
    assert sum(users for _, users in per_region.values()) == 350
