"""Figure 2 — CDFs of third-party requests per website."""

from repro.analysis.figures import figure2


def test_f2_requests_cdf(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        figure2, args=(study,), rounds=1, iterations=1
    )
    save_artifact("figure2", artifact["text"])
    tracking = artifact["ad_tracking_only"]
    clean = artifact["clean_only"]
    everything = artifact["all_third_party"]
    assert tracking is not None and clean is not None
    # Paper takeaway: on average most third-party requests per site are
    # ad/tracking related — the tracking CDF sits right of the clean one.
    assert tracking.mean() > clean.mean()
    assert tracking.median() >= clean.median()
    # The all-requests CDF dominates both components.
    assert everything.mean() > tracking.mean()
    assert everything.max >= tracking.max
