"""Table 9 — the methodology feature axes."""

from repro.analysis.tables import table9


def test_t9_related_work(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        table9, args=(study,), rounds=1, iterations=1
    )
    save_artifact("table9", artifact["text"])
    axes = dict(artifact["axes"])
    assert len(axes) == 7
    assert "HTTPS" in axes["Traffic type"]
    assert "RIPE IPmap" in axes["Infrastructure geolocation"]
