"""Table 3 — pairwise agreement across geolocation tools."""

from repro.analysis.tables import table3


def test_t3_geoloc_agreement(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        table3, args=(study,), rounds=1, iterations=1
    )
    save_artifact("table3", artifact["text"])
    matrix = artifact["matrix"]
    commercial = matrix[("ip-api", "MaxMind")]
    vs_ipmap = matrix[("MaxMind", "RIPE IPmap")]
    # Paper: commercial tools agree with each other (96%/99%) but only
    # about half agree with the active-measurement reference (53%/65%).
    assert commercial.country_pct > 90.0
    assert commercial.region_pct > 93.0
    assert vs_ipmap.country_pct < commercial.country_pct - 25.0
    assert 25.0 < vs_ipmap.country_pct < 75.0
    assert vs_ipmap.region_pct > vs_ipmap.country_pct
    # Diagonal sanity.
    assert matrix[("RIPE IPmap", "RIPE IPmap")].country_pct == 100.0
