"""Figure 12 — top destination countries per ISP (April 4 snapshot)."""

from repro.analysis.figures import figure12


def test_f12_isp_destinations(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        figure12, args=(study,), rounds=1, iterations=1
    )
    save_artifact("figure12", artifact["text"])
    reports = artifact["reports"]

    # Paper 12(a)/(b): German subscribers' flows are dominated by German
    # servers (69.0% / 67.3%).
    for name in ("DE-Broadband", "DE-Mobile"):
        top = reports[name].top_destinations(5)
        assert top[0][0] == "Germany"
        assert top[0][1] > 45.0

    # Paper 12(c): Poland keeps almost nothing at home — the Netherlands
    # leads, with the US and Germany next.
    pl = reports["PL"]
    pl_top = dict(pl.top_destinations(5))
    assert pl_top.get("Poland", 0.0) < 6.0
    assert "Netherlands" in pl_top
    leaders = [c for c, _ in pl.top_destinations(3)]
    assert "Netherlands" in leaders
    assert pl_top["Netherlands"] > pl_top.get("Germany", 0.0) - 3.0

    # Paper 12(d): Austria (Vienna) is Hungary's dominant sink (62.3%).
    hu = reports["HU"]
    hu_top = hu.top_destinations(3)
    assert hu_top[0][0] == "Austria"
    assert hu_top[0][1] > 30.0
