"""Ablation benchmarks: remove one methodological ingredient at a time
and measure what the paper's design choices actually buy.

* **lists-only classification** (drop Sect. 3.2's semi-automatic stage)
  — quantifies the paper's claim that their methodology doubles the
  detected tracking flows;
* **no passive-DNS completion** (drop Sect. 3.3) — quantifies the
  completeness gain of the pDNS lookup step;
* **no keyword stage** — isolates the referrer-closure contribution
  within the semi-automatic stage;
* **strict validity windows** (no liveness slack in the ISP join) —
  quantifies how stale the tracker-IP list becomes by the later
  snapshots without continued collection.
"""

from repro.core.classify import RequestClassifier
from repro.core.tracker_ips import TrackerIPInventory
from repro.netflow.join import HashedIPMatcher, TrackerFlowJoin
from repro.config import SNAPSHOT_DAYS


def test_ablation_lists_only_classifier(benchmark, study, save_artifact):
    classifier = RequestClassifier(
        study.world.easylist, study.world.easyprivacy
    )
    requests = study.visit_log.requests

    def lists_only():
        return classifier.classify(
            requests,
            enable_referrer_stage=False,
            enable_keyword_stage=False,
        )

    ablated = benchmark.pedantic(lists_only, rounds=1, iterations=1)
    full = study.classification
    gain = full.n_tracking() / ablated.n_tracking()
    save_artifact(
        "ablation_lists_only",
        f"lists-only tracking flows: {ablated.n_tracking():,}\n"
        f"full classifier:           {full.n_tracking():,}\n"
        f"methodology gain:          {gain:.2f}x (paper: ~1.8x)",
    )
    # Paper Sect. 1: the methodology "doubles the amount of tracking
    # flows detected compared to previous simpler approaches".
    assert 1.4 < gain < 2.6
    # The ablated result is exactly the stage-1 population.
    assert ablated.n_tracking() == full.list_stats().total_requests


def test_ablation_no_keyword_stage(benchmark, study, save_artifact):
    classifier = RequestClassifier(
        study.world.easylist, study.world.easyprivacy
    )
    requests = study.visit_log.requests

    def no_keywords():
        return classifier.classify(requests, enable_keyword_stage=False)

    ablated = benchmark.pedantic(no_keywords, rounds=1, iterations=1)
    full = study.classification
    save_artifact(
        "ablation_no_keywords",
        f"without keyword stage: {ablated.n_tracking():,}\n"
        f"full classifier:       {full.n_tracking():,}",
    )
    # The referrer closure does most of the semi-automatic work; the
    # keyword heuristic recovers a real but smaller tail (chains whose
    # roots the lists missed entirely).
    assert ablated.n_tracking() < full.n_tracking()
    keyword_share = (
        full.n_tracking() - ablated.n_tracking()
    ) / full.n_tracking()
    assert keyword_share < 0.35


def test_ablation_no_pdns_completion(benchmark, study, save_artifact):
    tracking = study.tracking_requests()

    def panel_only():
        inventory = TrackerIPInventory()
        inventory.ingest_panel(tracking)
        inventory.annotate_windows(study.world.pdns)
        inventory.annotate_dedication(study.world.pdns)
        return inventory

    ablated = benchmark.pedantic(panel_only, rounds=1, iterations=1)
    full = study.inventory
    missing = len(full) - len(ablated)
    save_artifact(
        "ablation_no_pdns",
        f"panel-only tracker IPs: {len(ablated):,}\n"
        f"with pDNS completion:   {len(full):,}\n"
        f"IPs recovered by pDNS:  {missing:,} "
        f"(+{100 * missing / len(ablated):.2f}%, paper +2.78%)",
    )
    assert len(ablated) < len(full)
    # The completion gain is real but small (paper: +2.78%).
    assert 0.2 < 100 * missing / len(ablated) < 12.0


def test_ablation_strict_validity_windows(benchmark, study, save_artifact):
    """Without the liveness slack, the late snapshots lose matches."""
    inventory = study.inventory

    def build_strict():
        matcher = HashedIPMatcher(window_slack_days=0.0)
        for record in inventory.records():
            matcher.add(record.address, record.window)
        return matcher

    strict = benchmark.pedantic(build_strict, rounds=1, iterations=1)
    relaxed = HashedIPMatcher()
    for record in inventory.records():
        relaxed.add(record.address, record.window)

    synthesizer = study.world.synthesizers["HU"]
    records = synthesizer.snapshot(SNAPSHOT_DAYS["June 20"])
    locate = study.geolocation.reference
    strict_result = TrackerFlowJoin(strict, locate).join(
        "HU", "HU", SNAPSHOT_DAYS["June 20"], records
    )
    relaxed_result = TrackerFlowJoin(relaxed, locate).join(
        "HU", "HU", SNAPSHOT_DAYS["June 20"], records
    )
    save_artifact(
        "ablation_strict_windows",
        f"strict-window matches:  {strict_result.matched_flows:,}\n"
        f"with liveness slack:    {relaxed_result.matched_flows:,}",
    )
    assert strict_result.matched_flows <= relaxed_result.matched_flows
    assert relaxed_result.matched_flows > 0
