"""Runtime engine — serial vs sharded execution of the stage graph.

Times the full medium-scale pipeline through ``repro.runtime`` with one
worker (the engine's inline serial path) and with a process fan-out,
asserting that sharding changes the wall clock but not one bit of the
results.  The per-stage metrics tables land in ``benchmarks/output`` so
a run leaves the scaling evidence behind.  (On a single-core box the
fan-out shows pure fork/IPC overhead — the invariance assertions are
the point; read the speedup off a multi-core run's artifact.)
"""

from __future__ import annotations

import os

from repro import WorldConfig
from repro.runtime import run_study

WORKERS = max(2, min(4, os.cpu_count() or 2))


def _headline(run):
    return (
        run.table2_counts(),
        run.eu28_destination_regions("RIPE IPmap"),
        run.eu28_destination_regions("MaxMind"),
        {
            key: (report.sampled_tracking_flows, report.region_shares)
            for key, report in run.isp_reports().items()
        },
    )


def test_runtime_scaling(benchmark, save_artifact):
    seed = int(os.environ.get("REPRO_BENCH_SEED", "20180825"))
    config = WorldConfig.medium(seed=seed)

    serial = run_study(config, workers=1)
    sharded = benchmark.pedantic(
        run_study,
        args=(config,),
        kwargs={"workers": WORKERS},
        rounds=1,
        iterations=1,
    )

    save_artifact(
        "runtime_scaling",
        "serial (workers=1):\n"
        + serial.metrics_report()
        + f"\n\nsharded (workers={WORKERS}):\n"
        + sharded.metrics_report(),
    )

    # The whole point of the engine: the shard fan-out must not change
    # a single headline number.
    assert _headline(serial) == _headline(sharded)
    # Without a cache directory every shard executes in both runs.
    assert serial.cache_hits == 0 and sharded.cache_hits == 0
    assert sharded.cache_misses == serial.cache_misses > 0
