"""Benchmark fixtures.

The benchmarks regenerate every paper table and figure against the
*medium* world (large enough for well-resolved distributions).  The
study is built once per session; each benchmark times the regeneration
of its artifact and writes the rendered rows to
``benchmarks/output/<artifact>.txt`` so the run leaves the same rows the
paper reports as evidence.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro import Study, WorldConfig

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def pytest_configure(config):
    OUTPUT_DIR.mkdir(exist_ok=True)


@pytest.fixture(scope="session")
def study() -> Study:
    """The shared medium-scale study with every stage precomputed."""
    seed = int(os.environ.get("REPRO_BENCH_SEED", "20180825"))
    instance = Study(WorldConfig.medium(seed=seed))
    instance.run_all()
    return instance


@pytest.fixture()
def save_artifact():
    """Writer for the rendered artifact text."""

    def write(artifact_id: str, text: str) -> None:
        (OUTPUT_DIR / f"{artifact_id}.txt").write_text(text + "\n")

    return write
