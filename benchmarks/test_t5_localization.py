"""Table 5 — localization improvements under the what-if scenarios."""

from repro.analysis.tables import table5
from repro.core.localization import LocalizationScenario


def test_t5_localization(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        table5, args=(study,), rounds=1, iterations=1
    )
    save_artifact("table5", artifact["text"])
    outcomes = {o.scenario: o for o in artifact["outcomes"]}
    default = outcomes[LocalizationScenario.DEFAULT]
    fqdn = outcomes[LocalizationScenario.REDIRECT_FQDN]
    tld = outcomes[LocalizationScenario.REDIRECT_TLD]
    mirror = outcomes[LocalizationScenario.POP_MIRRORING]
    combined = outcomes[LocalizationScenario.REDIRECT_TLD_PLUS_MIRRORING]

    # Paper row 1: Default 27.60% / 88.00%.
    assert 20.0 < default.country_pct < 40.0
    assert 80.0 < default.region_pct < 95.0
    # Paper's ordering: FQDN < TLD redirection; mirroring helps the
    # region more than the country; combined dominates everything.
    assert fqdn.country_pct > default.country_pct + 5.0
    assert tld.country_pct > fqdn.country_pct
    assert mirror.region_pct > default.region_pct
    assert combined.country_pct >= tld.country_pct
    assert combined.region_pct >= mirror.region_pct
    # Paper: TLD redirection nearly seals the GDPR region (98.33%).
    assert tld.region_pct > 93.0
