"""Figure 3 — top-20 tracking TLDs, ABP vs SEMI detection counts."""

from repro.analysis.figures import figure3
from repro.web.organizations import OrgKind


def test_f3_top_tlds(benchmark, study, save_artifact):
    artifact = benchmark.pedantic(
        figure3, args=(study,), rounds=1, iterations=1
    )
    save_artifact("figure3", artifact["text"])
    top = artifact["top_tlds"]
    assert len(top) == 20
    totals = [abp + semi for _, abp, semi in top]
    assert totals == sorted(totals, reverse=True)

    # Paper observation: the SEMI-found flows concentrate on ad-network /
    # middle-tier domains that the lists miss.
    fleet = study.world.fleet
    domain_owner = {}
    for org in fleet.organizations():
        for domain in org.domains:
            domain_owner[domain] = org.kind
    semi_heavy = [
        domain_owner.get(tld)
        for tld, abp, semi in top
        if semi > abp and domain_owner.get(tld) is not None
    ]
    assert any(
        kind in (OrgKind.DMP, OrgKind.DSP, OrgKind.TRACKER)
        for kind in semi_heavy
    )
