"""Setup shim for environments without the `wheel` package.

The project is fully described in pyproject.toml; this file only enables
legacy (`--no-use-pep517`) editable installs in offline environments.
"""

from setuptools import setup

setup()
