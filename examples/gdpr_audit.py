#!/usr/bin/env python
"""GDPR audit for one national Data Protection Authority.

Usage::

    python examples/gdpr_audit.py [ISO2] [seed]

The paper's motivation (Sect. 2.1): a national DPA can investigate a
tracking backend far more easily when it is physically inside its
jurisdiction.  This example plays the DPA of one country (default: DE)
and reports:

* how much of its citizens' tracking traffic it can reach domestically,
* where the rest terminates (the cross-border investigation problem),
* the sensitive-category flows leaving the country — the cases GDPR
  most urgently protects,
* the tracking domains it *could* summon domestically today, versus the
  ones that at least keep a domestic server a DNS change away.
"""

import sys
from collections import Counter

from repro import Study, WorldConfig
from repro.geodata.regions import Region, region_of_country
from repro.web.requests import tld1_of


def main() -> None:
    country = (sys.argv[1] if len(sys.argv) > 1 else "DE").upper()
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    study = Study(WorldConfig.small(seed=seed))
    registry = study.world.registry
    name = registry.get(country).name
    print(f"=== GDPR tracking audit for the {name} DPA ===\n")

    tracking = [
        r for r in study.tracking_requests() if r.user_country == country
    ]
    if not tracking:
        print("No panel users in this country — try ES, GB, DE, IT, GR …")
        return
    analyzer = study.confinement()

    domestic = foreign_eu = outside = 0
    destinations: Counter = Counter()
    for request in tracking:
        dest = analyzer.destination_country(request.ip)
        destinations[dest or "unknown"] += 1
        if dest == country:
            domestic += 1
        elif region_of_country(dest) is Region.EU28:
            foreign_eu += 1
        else:
            outside += 1
    total = len(tracking)
    print(f"Citizens' tracking flows observed: {total:,}")
    print(f"  terminating domestically:        {100*domestic/total:5.1f}%"
          "   (directly investigable)")
    print(f"  elsewhere in EU28:               {100*foreign_eu/total:5.1f}%"
          "   (one-stop-shop referral to a peer DPA)")
    print(f"  outside GDPR jurisdiction:       {100*outside/total:5.1f}%"
          "   (mutual legal assistance needed)")

    print("\nTop destination countries:")
    for dest, count in destinations.most_common(6):
        label = registry.find(dest).name if registry.find(dest) else dest
        print(f"  {label:<15} {100*count/total:5.1f}%")

    sensitive = [
        r
        for r in study.sensitive.sensitive_requests(tracking)
    ]
    if sensitive:
        leaked = sum(
            1
            for r in sensitive
            if analyzer.destination_country(r.ip) != country
        )
        categories = Counter(
            study.sensitive.category_of(r) for r in sensitive
        )
        print(
            f"\nSensitive-category flows: {len(sensitive):,} "
            f"({100*len(sensitive)/total:.2f}% of tracking), "
            f"{100*leaked/len(sensitive):.1f}% leave the country"
        )
        print("  categories: " + ", ".join(
            f"{cat}={n}" for cat, n in categories.most_common(5)
        ))
    else:
        print("\nNo sensitive-category flows observed for this country.")

    # Which tracking domains could be reached domestically?
    localization = study.localization
    domestic_now: set = set()
    domestic_possible: set = set()
    for request in tracking:
        tld = tld1_of(request.fqdn)
        if analyzer.destination_country(request.ip) == country:
            domestic_now.add(tld)
        elif country in localization.observed_tld_countries(tld):
            domestic_possible.add(tld)
    domestic_possible -= domestic_now
    print(
        f"\nTracking domains serving citizens from inside {name}: "
        f"{len(domestic_now)}"
    )
    print(
        f"Domains with a domestic server one DNS redirection away: "
        f"{len(domestic_possible)}"
    )


if __name__ == "__main__":
    main()
