#!/usr/bin/env python
"""Continuous GDPR-confinement monitoring from an ISP vantage (Sect. 7).

Usage::

    python examples/isp_compliance_monitor.py [seed]

The paper closes by proposing a system that "continuously monitors
compliance to GDPR over time" from NetFlow.  This example is that
monitor: it joins each ISP's snapshot days against the tracker-IP list
(built from the browser-extension panel plus passive DNS), prints the
Table 8 time series, and raises attention flags when confinement moves.
"""

import sys

from repro import SNAPSHOT_DAYS, Study, WorldConfig


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    study = Study(WorldConfig.small(seed=seed))
    isp_study = study.isp_study

    print("=== Cross-border tracking monitor (four European ISPs) ===\n")
    print(
        f"tracker IP list: {len(study.inventory)} addresses "
        f"({len(study.inventory.additional_addresses())} recovered via "
        f"passive DNS)"
    )

    for isp in study.world.isps:
        print(f"\n--- {isp.name} ({isp.demographics}) ---")
        history = []
        for snapshot in SNAPSHOT_DAYS:
            report = isp_study.run_snapshot(isp.name, snapshot)
            eu = report.region_shares.get("EU 28", 0.0)
            na = report.region_shares.get("N. America", 0.0)
            history.append((snapshot, eu))
            estimated = report.estimated_tracking_flows
            print(
                f"  {snapshot:<8} sampled={report.sampled_tracking_flows:>7,} "
                f"(est. {estimated:>12,}) EU28={eu:5.1f}% NA={na:5.1f}% "
                f"enc={report.encrypted_share_pct:4.1f}%"
            )
        # Attention flags: movement across the GDPR implementation date.
        before = [eu for snap, eu in history if snap in ("Nov 8", "April 4")]
        after = [eu for snap, eu in history if snap in ("May 16", "June 20")]
        delta = sum(after) / len(after) - sum(before) / len(before)
        verdict = (
            "stable"
            if abs(delta) < 5.0
            else ("improved" if delta > 0 else "DEGRADED")
        )
        print(f"  confinement across the GDPR date: {verdict} "
              f"({delta:+.1f} points)")

        top = isp_study.run_snapshot(isp.name, "June 20").top_destinations(4)
        print(
            "  current sinks: "
            + ", ".join(f"{country} {share:.1f}%" for country, share in top)
        )


if __name__ == "__main__":
    main()
