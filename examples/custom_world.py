#!/usr/bin/env python
"""Build a customized world: a counterfactual ecosystem experiment.

Usage::

    python examples/custom_world.py [seed]

The configuration system makes "what if the ecosystem were different?"
experiments one dataclass away.  Here we compare the default world
against a counterfactual where the RTB middle tier has been consolidated
into the hyperscalers (fewer DSPs/DMPs/long-tail trackers) and ask how
the paper's headline numbers move.
"""

import dataclasses
import sys

from repro import Study, WorldConfig
from repro.geodata.regions import Region


def headline(study: Study) -> dict:
    shares = study.eu28_destination_regions("RIPE IPmap")
    classification = study.classification
    abp = classification.list_stats().total_requests
    semi = classification.semi_automatic_stats().total_requests
    return {
        "eu28_confinement": shares.get(Region.EU28.value, 0.0),
        "na_leakage": shares.get(Region.NORTH_AMERICA.value, 0.0),
        "semi_over_abp": semi / abp if abp else 0.0,
        "tracker_ips": len(study.inventory),
    }


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    base_config = WorldConfig.small(seed=seed)

    consolidated_ecosystem = dataclasses.replace(
        base_config.ecosystem,
        n_dsps=2,
        n_dmps=2,
        n_eu_trackers=4,
        n_us_trackers=2,
        n_analytics=3,
    )
    consolidated_config = dataclasses.replace(
        base_config, ecosystem=consolidated_ecosystem
    )

    print("Running the baseline world…")
    baseline = headline(Study(base_config))
    print("Running the consolidated (hyperscaler-dominated) world…")
    consolidated = headline(Study(consolidated_config))

    print("\nmetric                     baseline   consolidated")
    for key in baseline:
        print(f"{key:<26} {baseline[key]:>9.2f}   {consolidated[key]:>9.2f}")

    print(
        "\nReading: consolidation shrinks the list-invisible middle tier, "
        "so the semi-automatic classifier finds less (lower semi/abp), "
        "while confinement shifts with the hyperscalers' dense EU "
        "footprint."
    )


if __name__ == "__main__":
    main()
