#!/usr/bin/env python
"""Inter-tracker collaboration atlas (the paper's future work, built).

Usage::

    python examples/collaboration_atlas.py [seed]

The paper's conclusion promises to "capture inter-tracker collaboration
and data exchange" next. This example runs that analysis: it extracts
every cookie-sync identifier hand-off from the classified panel log,
builds the collaboration graph, and reports the structural and
geographic findings — including the hand-offs that move an EU citizen's
identifier out of GDPR jurisdiction *between trackers*, which no
endpoint-confinement number can see. It closes with the multi-regulation
monitor over the same flows.
"""

import sys

from repro import Study, WorldConfig
from repro.core.collaboration import CollaborationAnalyzer
from repro.core.regulations import RegulationMonitor


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    study = Study(WorldConfig.small(seed=seed))
    analyzer = CollaborationAnalyzer(
        study.classification, study.geolocation.reference
    )

    summary = analyzer.summary()
    print("=== Tracker collaboration graph ===")
    print(f"identifier hand-offs observed: {int(summary['hand_offs']):,}")
    print(f"collaborating domains:         {int(summary['domains']):,}")
    print(f"distinct partnerships (edges): {int(summary['edges']):,}")
    print(
        f"ecosystem cohesion: {summary['giant_component_share']:.0%} of "
        f"domains in the largest component "
        f"({int(summary['components'])} components)"
    )
    print(
        f"hand-offs crossing a national border: "
        f"{summary['cross_border_share_pct']:.1f}%"
    )
    print(
        f"hand-offs moving data out of GDPR jurisdiction: "
        f"{summary['gdpr_exit_share_pct']:.1f}%"
    )

    print("\nheaviest partnerships:")
    for source, target, weight in analyzer.top_collaborations(6):
        print(f"  {source:<28} -> {target:<28} {weight:>6,} hand-offs")

    print("\nbiggest identifier sinks (in-degree):")
    for domain, degree in analyzer.hubs(6):
        print(f"  {domain:<28} receives from {degree} partners")

    print("\ntop cross-country exchanges:")
    matrix = analyzer.country_exchange_matrix()
    crossing = sorted(
        (
            (pair, count)
            for pair, count in matrix.items()
            if pair[0] != pair[1]
        ),
        key=lambda item: -item[1],
    )
    for (source, target), count in crossing[:6]:
        print(f"  {source} -> {target}: {count:,}")

    print("\n=== Regulation monitor over the same flows ===")
    monitor = RegulationMonitor(
        study.geolocation.reference,
        sensitive=study.sensitive,
        registry=study.world.registry,
    )
    for name, report in sorted(
        monitor.evaluate_all(study.tracking_requests()).items()
    ):
        print(
            f"  {name:<28} in-scope={report.in_scope_flows:>7,} "
            f"confined={report.confinement_pct:5.1f}% "
            f"{'investigable' if report.investigable else 'HARD TO REACH'}"
        )


if __name__ == "__main__":
    main()
