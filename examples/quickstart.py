#!/usr/bin/env python
"""Quickstart: run the whole study on a small world and print the
headline results of the paper.

Usage::

    python examples/quickstart.py [seed]

Builds a complete simulated world (organizations, server fleets, DNS,
publishers, a 40-user panel, four ISPs), runs the paper's measurement
pipeline end to end, and prints:

* Table 1-style dataset statistics,
* the two-stage classification split (Table 2),
* the Figure 7 geolocation flip (the paper's headline),
* national confinement per EU28 country (Figure 8),
* the localization what-if table (Table 5),
* and, via the runtime engine, the run's provenance manifest
  (docs/observability.md).
"""

import sys

from repro import Study, WorldConfig
from repro.analysis.tables import table1, table2, table5
from repro.geodata.regions import Region
from repro.obs import Tracer
from repro.runtime import run_study


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    print(f"Building the small world (seed={seed}) and running the study…")
    study = Study(WorldConfig.small(seed=seed))

    print()
    print(table1(study)["text"])
    print()
    print(table2(study)["text"])

    print()
    print("Figure 7 — where EU28 users' tracking flows terminate:")
    ipmap = study.eu28_destination_regions("RIPE IPmap")
    maxmind = study.eu28_destination_regions("MaxMind")
    for region in sorted(set(ipmap) | set(maxmind)):
        print(
            f"  {region:<15} active-measurement={ipmap.get(region, 0.0):6.2f}%"
            f"   commercial-db={maxmind.get(region, 0.0):6.2f}%"
        )
    eu = Region.EU28.value
    print(
        f"\n  The commercial database flips the takeaway: "
        f"{maxmind.get(eu, 0):.1f}% vs {ipmap.get(eu, 0):.1f}% EU28 "
        f"confinement."
    )

    print()
    print("Figure 8 — national confinement per EU28 origin:")
    national = study.confinement().national_confinement(
        study.tracking_requests()
    )
    for country, pct in sorted(national.items(), key=lambda kv: -kv[1]):
        print(f"  {country}: {pct:5.1f}% of flows stay in-country")

    print()
    print(table5(study)["text"])

    # The same study through the traced runtime engine: the provenance
    # manifest records what produced these numbers — config digest, per-
    # stage record counts and the merged metrics registry.
    print()
    print("Provenance — a traced engine run over the same config:")
    run = run_study(WorldConfig.small(seed=seed), tracer=Tracer())
    manifest = run.manifest
    print(f"  config digest: {manifest['config']['digest'][:16]}…")
    for entry in manifest["stages"]:
        counts = ", ".join(
            f"{k}={v}" for k, v in sorted(entry["records_out"].items())
        )
        print(f"  {entry['stage']:<18} {counts}")
    agreed = run.registry.value("ipmap.locate", verdict="accepted")
    print(f"  geolocation majority-vote acceptances: {int(agreed)}")


if __name__ == "__main__":
    main()
