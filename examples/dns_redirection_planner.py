#!/usr/bin/env python
"""DNS-redirection planning for a tracking operator (Sect. 5).

Usage::

    python examples/dns_redirection_planner.py [seed]

Plays the role of a GDPR-friendly tracking operator deciding how to
confine its flows: for each of the operator's registrable domains the
planner reports the countries it already serves from, the extra
confinement each what-if lever would buy (FQDN-level redirection,
TLD-level redirection, cloud PoP mirroring), and the residual flows
that would still cross borders.
"""

import sys
from collections import Counter

from repro import Study, WorldConfig
from repro.core.localization import LocalizationScenario
from repro.geodata.regions import Region, region_of_country
from repro.web.requests import tld1_of


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    study = Study(WorldConfig.small(seed=seed))
    localization = study.localization
    analyzer = study.confinement()

    # Pick the busiest multi-country tracking operator as "us".
    volume: Counter = Counter()
    for request in study.tracking_requests():
        volume[request.truth_org] += 1
    fleet = study.world.fleet
    operator = next(
        name
        for name, _ in volume.most_common()
        if len({s.country for s in fleet.servers_of(name)}) >= 3
    )
    org = fleet.org(operator)
    our_domains = set(org.domains)
    print(f"=== Redirection plan for operator {operator!r} ===")
    print(f"legal seat: {org.legal_country}, domains: {sorted(our_domains)}")
    pops = sorted({s.country for s in fleet.servers_of(operator)})
    print(f"current PoP countries: {pops}\n")

    our_flows = [
        r
        for r in study.tracking_requests()
        if tld1_of(r.fqdn) in our_domains
        and region_of_country(r.user_country) is Region.EU28
    ]
    if not our_flows:
        print("Operator has no EU28 flows in this world; re-run with "
              "another seed.")
        return

    print(f"EU28 flows to our domains: {len(our_flows):,}")
    for scenario in (
        LocalizationScenario.DEFAULT,
        LocalizationScenario.REDIRECT_FQDN,
        LocalizationScenario.REDIRECT_TLD,
        LocalizationScenario.POP_MIRRORING,
    ):
        outcome = localization.evaluate(our_flows, scenario)
        print(
            f"  {scenario.value:<28} in-country={outcome.country_pct:5.1f}%  "
            f"in-EU28={outcome.region_pct:5.1f}%"
        )

    # Where would users still cross borders even at TLD level?
    stranded: Counter = Counter()
    for request in our_flows:
        tld = tld1_of(request.fqdn)
        if request.user_country not in localization.observed_tld_countries(
            tld
        ):
            stranded[request.user_country] += 1
    if stranded:
        print("\nUser countries we cannot serve domestically today "
              "(candidate new PoPs, by stranded flows):")
        for country, count in stranded.most_common(8):
            print(f"  {country}: {count:,} flows")
    clouds = sorted(
        set().union(
            *(localization.cloud_tenancy(d) for d in our_domains)
        )
    )
    print(
        f"\nDetected cloud tenancy (from published ranges): {clouds or 'none'}"
    )
    if clouds:
        reachable = set()
        for provider in clouds:
            reachable |= set(
                study.world.clouds.get(provider).pop_countries
            )
        print(
            "Countries reachable by mirroring onto our existing clouds: "
            + ", ".join(sorted(c for c in reachable))
        )


if __name__ == "__main__":
    main()
