#!/usr/bin/env python
"""Run the full study at the paper's Table 1 magnitudes.

Usage::

    python scripts/run_paper_scale.py [output_dir]

Builds the ``paper_scale`` world (7M+ third-party requests — expect
minutes and a few GB of RAM), runs every pipeline stage, writes the full
report plus the exported datasets to ``output_dir`` (default:
``paper_scale_run/``).
"""

import pathlib
import sys
import time

from repro import Study, WorldConfig
from repro.analysis.report import full_report
from repro.io import inventory_to_json, summary_to_json
from repro.analysis.report import experiment_summary


def main() -> None:
    target = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1 else "paper_scale_run"
    )
    target.mkdir(parents=True, exist_ok=True)
    started = time.time()

    print("Building the paper-scale world… (this takes a while)")
    study = Study(WorldConfig.paper_scale())
    log = study.visit_log
    print(
        f"[{time.time()-started:7.1f}s] panel: "
        f"{log.third_party_requests():,} third-party requests from "
        f"{log.n_users()} users over {log.first_party_domains():,} sites"
    )

    report = full_report(study)
    (target / "report.txt").write_text(report)
    print(f"[{time.time()-started:7.1f}s] report written")

    inventory_to_json(study.inventory, target / "tracker_ips.json")
    summary_to_json(experiment_summary(study), target / "summary.json")
    print(
        f"[{time.time()-started:7.1f}s] exported "
        f"{len(study.inventory):,} tracker IPs → {target}/"
    )


if __name__ == "__main__":
    main()
