#!/usr/bin/env python
"""Run the full study at the paper's Table 1 magnitudes.

Usage::

    python scripts/run_paper_scale.py [output_dir] [--workers N]
                                      [--cache-dir DIR]

Builds the ``paper_scale`` world (7M+ third-party requests — expect
minutes and a few GB of RAM) and executes every pipeline stage through
the :mod:`repro.runtime` engine: ``--workers`` fans the stage shards
over that many processes, ``--cache-dir`` persists stage artifacts so a
re-run (after an interruption, or after editing one stage) replays the
unchanged stages from disk.  Writes the full report, the exported
datasets and the per-stage runtime metrics to ``output_dir`` (default:
``paper_scale_run/``).
"""

import argparse
import pathlib
import time

from repro import WorldConfig
from repro.analysis.report import experiment_summary, full_report
from repro.io import inventory_to_json, run_metrics_to_json, summary_to_json
from repro.runtime import run_study


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "output_dir", nargs="?", default="paper_scale_run",
        type=pathlib.Path,
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process workers for shard fan-out (default: 1)",
    )
    parser.add_argument(
        "--cache-dir", type=pathlib.Path, default=None,
        help="artifact cache directory (default: no cache)",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    target = args.output_dir
    target.mkdir(parents=True, exist_ok=True)
    started = time.time()

    print(
        f"Building the paper-scale world and running the engine "
        f"(workers={args.workers})… (this takes a while)"
    )
    run = run_study(
        WorldConfig.paper_scale(),
        workers=args.workers,
        cache_dir=str(args.cache_dir) if args.cache_dir else None,
    )
    print(run.metrics_report())
    run_metrics_to_json(
        run.metrics_rows(),
        target / "runtime_metrics.json",
        workers=args.workers,
        cache_hits=run.cache_hits,
        cache_misses=run.cache_misses,
    )

    study = run.study()
    log = study.visit_log
    print(
        f"[{time.time()-started:7.1f}s] panel: "
        f"{log.third_party_requests():,} third-party requests from "
        f"{log.n_users()} users over {log.first_party_domains():,} sites"
    )

    report = full_report(study)
    (target / "report.txt").write_text(report)
    print(f"[{time.time()-started:7.1f}s] report written")

    inventory_to_json(study.inventory, target / "tracker_ips.json")
    summary_to_json(experiment_summary(study), target / "summary.json")
    print(
        f"[{time.time()-started:7.1f}s] exported "
        f"{len(study.inventory):,} tracker IPs → {target}/"
    )


if __name__ == "__main__":
    main()
