#!/usr/bin/env python
"""End-to-end smoke test of the runtime engine.

Usage::

    python scripts/run_smoke.py [cache_dir]

Runs the full stage graph twice on the tiny ``small`` preset through
the sharded engine (2 workers): the first run populates the artifact
cache, the second must replay every stage from it.  Exits non-zero if
the two runs disagree on the headline numbers or if the warm run
executed any shard at all.  ``make run-smoke`` wires this into CI.
"""

import sys
import tempfile

from repro import WorldConfig
from repro.runtime import run_study


def headline(run):
    return (
        run.table2_counts(),
        run.eu28_destination_regions(),
        run.sensitive_summary(),
    )


def main() -> int:
    with tempfile.TemporaryDirectory() as fallback:
        cache_dir = sys.argv[1] if len(sys.argv) > 1 else fallback
        config = WorldConfig.small()

        cold = run_study(config, workers=2, cache_dir=cache_dir)
        print("cold run:")
        print(cold.metrics_report())
        warm = run_study(config, workers=2, cache_dir=cache_dir)
        print("warm run:")
        print(warm.metrics_report())

        if warm.cache_hits < 1:
            print("FAIL: warm run had no cache hits", file=sys.stderr)
            return 1
        if warm.cache_misses != 0:
            print(
                f"FAIL: warm run executed {warm.cache_misses} shard(s) "
                "instead of replaying from cache",
                file=sys.stderr,
            )
            return 1
        if headline(cold) != headline(warm):
            print(
                "FAIL: warm replay changed the headline numbers",
                file=sys.stderr,
            )
            return 1
    print(
        f"OK: warm run replayed all {warm.cache_hits} shards from cache "
        "with identical headline numbers"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
