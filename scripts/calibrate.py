#!/usr/bin/env python
"""Calibration dashboard: prints every headline metric next to the
paper's value so the world-model constants can be tuned.

Usage: python scripts/calibrate.py [small|medium|paper]
"""

import sys
import time

from repro import Study, WorldConfig


def main() -> None:
    preset = sys.argv[1] if len(sys.argv) > 1 else "medium"
    config = {
        "small": WorldConfig.small,
        "medium": WorldConfig.medium,
        "paper": WorldConfig.paper_scale,
    }[preset]()
    t0 = time.time()
    study = Study(config)
    log = study.visit_log
    print(f"[{time.time()-t0:6.1f}s] panel simulated")
    print(
        f"T1: users={log.n_users()} 1p_domains={log.first_party_domains()} "
        f"1p_reqs={log.first_party_requests()} 3p_fqdns={log.third_party_fqdns()} "
        f"3p_reqs={log.third_party_requests()} https={log.https_share():.1%}"
    )

    cls = study.classification
    abp, semi = cls.list_stats(), cls.semi_automatic_stats()
    print(
        f"T2: ABP  fqdn={len(abp.fqdns)} tld={len(abp.tlds)} "
        f"uniq={len(abp.unique_urls)} reqs={abp.total_requests}"
    )
    print(
        f"    SEMI fqdn={len(semi.fqdns)} tld={len(semi.tlds)} "
        f"uniq={len(semi.unique_urls)} reqs={semi.total_requests} "
        f"semi/abp={semi.total_requests/max(1,abp.total_requests):.2f} (paper 0.80)"
    )
    truth = sum(1 for r in cls.requests if r.is_tracking_truth)
    print(
        f"    classified={cls.n_tracking()} truth={truth} "
        f"share_of_3p={cls.n_tracking()/len(cls.requests):.1%} (paper 61.5%)"
    )

    # traffic breakdown diagnostics (uses simulation ground truth)
    from collections import Counter
    kind_counts: Counter = Counter()
    seat_counts: Counter = Counter()
    fleet = study.world.fleet
    for r in cls.tracking_requests():
        org = fleet.org(r.truth_org)
        kind_counts[org.kind.value] += 1
        seat = org.legal_country
        seat_counts["US" if seat == "US" else ("EU" if study.world.registry.get(seat).eu28 else seat)] += 1
    total_t = sum(kind_counts.values())
    print("    by kind: " + " ".join(f"{k}={100*v/total_t:.1f}" for k, v in kind_counts.most_common()))
    print("    by seat: " + " ".join(f"{k}={100*v/total_t:.1f}" for k, v in seat_counts.most_common(6)))

    inv = study.inventory
    print(
        f"IPs: total={len(inv)} additional={len(inv.additional_addresses())} "
        f"(+{inv.additional_share_pct():.2f}%, paper +2.78%) "
        f"v4={inv.ipv4_share_pct():.1f}% (paper 97%)"
    )
    print(
        f"F4: single-domain request share={inv.single_domain_request_share_pct():.1f}% "
        f"(paper ~85%)  multi-domain IP share={inv.multi_domain_ip_share_pct():.2f}% "
        f"(paper <2%)  heavy(>=10)={len(inv.heavy_multi_domain_ips())} (paper 114)"
    )
    print(f"[{time.time()-t0:6.1f}s] inventory built")

    ipm = study.eu28_destination_regions()
    mm = study.eu28_destination_regions("MaxMind")
    fmt = lambda d: {k: round(v, 2) for k, v in sorted(d.items(), key=lambda x: -x[1])}
    print(f"F7b IPmap  : {fmt(ipm)}")
    print("    paper  : EU28 84.93, NA 10.75, RestEU 3.07, AS 0.98")
    print(f"F7a MaxMind: {fmt(mm)}")
    print("    paper  : NA 65.94, EU28 33.16, RestEU 0.47")
    print(f"[{time.time()-t0:6.1f}s] geolocated")

    conf = study.confinement()
    tracking = study.tracking_requests()
    nat = conf.national_confinement(tracking)
    print(
        "F8 national: "
        + " ".join(
            f"{c}={nat.get(c, 0):.1f}"
            for c in ("GB", "ES", "DE", "IT", "GR", "RO", "CY", "DK", "PL", "HU", "BE")
        )
    )
    print("    paper  : GB=58.4 ES=33.1 GR=6.77 RO=5.1 CY=1.16")
    per_region = conf.per_region_confinement(tracking)
    print(
        "F6 regions : "
        + " ".join(
            f"{region}={pct:.1f}({users})"
            for region, (pct, users) in per_region.items()
        )
    )
    print("    paper  : AF=2.11(22) AS=16.39(20) RestEU=12.94(23) SA=4.42(86) NA=86.83(16)")
    dest = conf.overall_destination_shares(tracking)
    print(f"F6 dest    : {fmt(dest)}")
    print("    paper  : EU28 51.65, NA 40.87, RestEU 3.78, AS 1.90, SA 1.51")
    sankey = conf.continent_sankey(tracking)
    for origin in sankey.origins():
        top = sankey.top_destinations(origin, 3)
        total = sankey.origin_total(origin)
        print(
            f"    {origin:<15} ({total:8.0f} flows) -> "
            + " ".join(f"{d}={s:.1f}" for d, s in top)
        )

    t5 = study.localization.scenario_table(tracking)
    for outcome in t5:
        print(
            f"T5: {outcome.scenario.value:<42} country={outcome.country_pct:5.2f}% "
            f"region={outcome.region_pct:5.2f}%"
        )
    print("    paper  : Default 27.6/88.0  FQDN 52.15/93.53  TLD 66.13/98.33")
    print("             Mirror 30.79/92.09  TLD+Mirror 68.12/99.20")

    t3 = study.geolocation.pairwise_agreement(inv.addresses())
    for pair in (("ip-api", "MaxMind"), ("ip-api", "RIPE IPmap"), ("MaxMind", "RIPE IPmap")):
        cell = t3[pair]
        print(f"T3: {pair[0]} vs {pair[1]}: country={cell.country_pct:.1f}% region={cell.region_pct:.1f}%")
    print("    paper  : ipapi/MM 96.13/99.15, vs IPmap ~53/65")

    sens = study.sensitive
    shares = sens.category_shares(tracking)
    print(f"F9: sensitive share={sens.sensitive_share_pct(tracking):.2f}% (paper 2.89%)")
    print("    categories: " + " ".join(f"{k}={v:.0f}" for k, v in sorted(shares.items(), key=lambda x: -x[1])))
    print("    paper  : health=38 gambling=22 sexorient=11 pregnancy=11 politics=9 porn=7")
    print(f"[{time.time()-t0:6.1f}s] sensitive done")

    isp = study.isp_study
    for name in ("DE-Broadband", "DE-Mobile", "PL", "HU"):
        report = isp.run_snapshot(name, "April 4")
        top = ", ".join(f"{c}={s:.1f}" for c, s in report.top_destinations(5))
        eu = report.region_shares.get("EU 28", 0.0)
        na = report.region_shares.get("N. America", 0.0)
        print(f"T8/F12 {name:<13} EU28={eu:.1f}% NA={na:.1f}% enc={report.encrypted_share_pct:.0f}% | {top}")
    print("    paper Apr4: DEB EU 87.7/NA 9.3 (DE 69.0) | DEM 90.8/6.6 (DE 67.3) | PL 75.6/21.5 (NL 32.9, US 20.7, DE 20.5) | HU 93.1/6.3 (AT 62.3)")
    print(f"[{time.time()-t0:6.1f}s] total")


if __name__ == "__main__":
    main()
