#!/usr/bin/env python
"""End-to-end smoke test of the continuous-profiling pipeline.

Usage::

    python scripts/profile_smoke.py [out_dir]

Exercises the whole profiling story in one bounded run:

* ``repro run --workers 4 --profile`` on the medium preset, cold and
  warm against one cache — the cold trace-event export must carry at
  least two distinct pid tracks with worker ``stage:*`` spans (the
  cross-process span stitching, visible), both speedscope exports must
  validate and decode, and ``repro obs diff`` between the two ledger
  records must report **zero unexplained drift** (``profile.*`` deltas
  classify as *timing*, cache deltas as *cache*);
* a streaming columnar pass (``SyntheticCohortSource`` →
  ``StreamingRecordPath``, the ``scripts/scale_world.py`` geometry in
  miniature) profiled until the sampler catches a hot frame inside
  ``core/kernels.py`` or ``netflow/columns.py`` — the vectorized record
  path, visible in a flamegraph;
* the engine report plus the streaming stage fold into a fresh ledger
  record via ``scripts/bench_to_ledger.py --profile-report``, and
  ``repro obs check`` gates the resulting
  ``profile.self_s{func=_total,stage=...}`` gauges against the
  committed envelope in ``benchmarks/budgets_profile.json`` — and must
  fail against an impossible one (the gate actually gates);
* ``repro obs profile`` renders the merged speedscope artifact.

Artifacts (speedscope profiles, reports, trace events, ledger) land in
``out_dir`` (default ``build/profile-smoke``) so CI can upload them.
``make profile-smoke`` wires this into CI.
"""

import json
import os
import sys

import bench_to_ledger

from repro import Study, WorldConfig
from repro.cli import main as cli_main
from repro.core.stream import StreamingRecordPath, SyntheticCohortSource
from repro.datasets.builder import build_world
from repro.obs import (
    SamplingProfiler,
    build_report,
    load_speedscope,
    load_trace_events,
    validate_speedscope,
    write_speedscope,
)
from repro.obs.ledger import ledger_path
from repro.obs.persist import atomic_write_json
from repro.web.columns import request_table

#: the committed self-time envelope this smoke run must satisfy
BUDGETS = os.path.join("benchmarks", "budgets_profile.json")

#: streaming-pass geometry: enough rows that the sampler lands inside
#: the columnar kernels, small enough to stay a smoke test
STREAM_USERS = 20_000
STREAM_REQUESTS_PER_USER = 25
STREAM_COHORT = 5_000
STREAM_HZ = 997.0

#: sampler attempts before declaring the kernels invisible
STREAM_ATTEMPTS = 4

#: the columnar modules a streaming profile must name (shortened paths)
KERNEL_SUFFIXES = ("core/kernels.py", "netflow/columns.py")


def _has_kernel_frame(profile) -> bool:
    """Whether any sampled stack touches the columnar kernels."""
    return any(
        path.endswith(KERNEL_SUFFIXES)
        for stack, _weight in profile.stacks()
        for _name, path, _line in stack
    )


def profile_streaming_pass():
    """Profile the columnar record path until a kernel frame lands.

    Returns the sampled :class:`~repro.obs.Profile`.  One attempt
    streams ``STREAM_USERS`` synthetic users through
    :class:`StreamingRecordPath` under a :class:`SamplingProfiler`;
    sampling is statistical, so up to ``STREAM_ATTEMPTS`` passes merge
    until ``core/kernels.py`` / ``netflow/columns.py`` shows up.
    """
    study = Study(world=build_world(WorldConfig.small(seed=7)))
    template_requests = study.visit_log.requests
    reference = study.geolocation.reference
    located = {}
    for address in sorted(
        {request.ip for request in template_requests}, key=str
    ):
        located[address] = reference(address)
    template = request_table(template_requests)

    profiler = SamplingProfiler(hz=STREAM_HZ)
    for _attempt in range(STREAM_ATTEMPTS):
        source = SyntheticCohortSource(
            template, study.world.streams, STREAM_USERS,
            STREAM_REQUESTS_PER_USER,
        )
        path = StreamingRecordPath(study.classifier, located.get)
        profiler.start()
        try:
            for lo in range(0, STREAM_USERS, STREAM_COHORT):
                path.consume(
                    source.cohort(lo, min(lo + STREAM_COHORT, STREAM_USERS))
                )
        finally:
            profiler.stop()
        if _has_kernel_frame(profiler.profile):
            break
    return profiler.profile


def main() -> int:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "build/profile-smoke"
    os.makedirs(out_dir, exist_ok=True)
    cache = os.path.join(out_dir, "cache")

    # -- profiled engine runs: cold fill, then warm replay ---------------
    for label in ("cold", "warm"):
        status = cli_main([
            "--preset", "medium", "run",
            "--workers", "4",
            "--cache-dir", cache,
            "--profile", os.path.join(out_dir, f"profile-{label}.json"),
            "--profile-report", os.path.join(out_dir, f"report-{label}.json"),
            "--trace-events", os.path.join(out_dir, f"events-{label}.json"),
        ])
        if status != 0:
            print(f"FAIL: {label} CLI run exited {status}", file=sys.stderr)
            return 1

    # The cold trace must carry the stitched worker tracks: stage spans
    # recorded under at least two distinct worker pids.
    events = load_trace_events(
        os.path.join(out_dir, "events-cold.json")
    )["traceEvents"]
    worker_pids = {
        event["pid"]
        for event in events
        if event.get("ph") == "X"
        and str(event.get("name", "")).startswith("stage:")
        and event["pid"] != 1
    }
    if len(worker_pids) < 2:
        print(
            f"FAIL: expected worker stage spans on >= 2 distinct pid "
            f"tracks, saw {sorted(worker_pids)}",
            file=sys.stderr,
        )
        return 1

    # Both speedscope exports must decode; warm must replay cold.
    profiles = {
        label: load_speedscope(os.path.join(out_dir, f"profile-{label}.json"))
        for label in ("cold", "warm")
    }
    if profiles["warm"] != profiles["cold"]:
        print(
            "FAIL: warm run did not replay the cold run's profile",
            file=sys.stderr,
        )
        return 1
    with open(
        os.path.join(out_dir, "report-cold.json"), "r", encoding="utf-8"
    ) as handle:
        report = json.load(handle)

    # Zero unexplained drift between the profiled cold and warm runs:
    # profile.* gauges classify as timing, cache deltas as cache.
    status = cli_main([
        "obs", "--cache-dir", cache,
        "diff", "latest~1", "latest",
        "--out", os.path.join(out_dir, "diff.json"),
    ])
    if status != 0:
        print(
            f"FAIL: profiled cold/warm diff reported drift (exit {status})",
            file=sys.stderr,
        )
        return 1

    # -- streaming columnar pass: the kernels, visible -------------------
    stream_profile = profile_streaming_pass()
    if not _has_kernel_frame(stream_profile):
        print(
            f"FAIL: no {' / '.join(KERNEL_SUFFIXES)} frame sampled in "
            f"{STREAM_ATTEMPTS} streaming passes",
            file=sys.stderr,
        )
        return 1

    # Merge the engine and streaming profiles into the final artifact.
    merged = profiles["cold"].merge(stream_profile)
    merged_path = os.path.join(out_dir, "profile.json")
    write_speedscope(merged, merged_path, name="repro profile smoke")
    with open(merged_path, "r", encoding="utf-8") as handle:
        validate_speedscope(json.load(handle))
    if not _has_kernel_frame(load_speedscope(merged_path)):
        print(
            "FAIL: merged speedscope artifact lost the kernel frames",
            file=sys.stderr,
        )
        return 1

    # -- ledger fold + budget gate ---------------------------------------
    stream_report = build_report({"streaming": stream_profile}, hz=STREAM_HZ)
    report["stages"]["streaming"] = stream_report["stages"]["streaming"]
    combined_path = os.path.join(out_dir, "report.json")
    atomic_write_json(report, combined_path)

    ledger = ledger_path(cache)
    status = bench_to_ledger.main([ledger, "--profile-report", combined_path])
    if status != 0:
        print(f"FAIL: bench_to_ledger exited {status}", file=sys.stderr)
        return 1

    status = cli_main(
        ["obs", "--cache-dir", cache, "check", "--budgets", BUDGETS]
    )
    if status != 0:
        print(
            f"FAIL: self times left the {BUDGETS} envelope (exit {status})",
            file=sys.stderr,
        )
        return 1

    # The gate must actually gate: an impossible ceiling has to fail.
    impossible = os.path.join(out_dir, "budgets-impossible.json")
    atomic_write_json(
        {
            "schema": "repro.obs/budgets/v1",
            "metrics": {
                "profile.self_s{func=_total,stage=streaming}": {
                    "min": 1e12,
                },
            },
        },
        impossible,
    )
    status = cli_main(
        ["obs", "--cache-dir", cache, "check", "--budgets", impossible]
    )
    if status != 1:
        print(
            f"FAIL: impossible self-time floor not flagged (exit {status})",
            file=sys.stderr,
        )
        return 1

    # -- the terminal renderer -------------------------------------------
    status = cli_main(["obs", "profile", merged_path, "--top", "5"])
    if status != 0:
        print(f"FAIL: repro obs profile exited {status}", file=sys.stderr)
        return 1

    print(
        f"OK: profiled cold/warm medium runs with zero unexplained drift; "
        f"worker spans on {len(worker_pids)} pid tracks; merged profile "
        f"({len(merged)} stacks, {merged.seconds:.1f}s sampled) names the "
        f"columnar kernels; budgets gate exercised; artifacts in {out_dir}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
