#!/usr/bin/env python
"""End-to-end smoke test of the ``repro serve`` study service.

Usage::

    python scripts/serve_smoke.py [out_dir]

Starts a :class:`repro.serve.StudyServer` on an ephemeral port (in a
background thread of this process — the smoke needs no subprocesses),
then drives the full service contract over real HTTP:

* ``POST /studies`` twice with the same small config: the **cold** job
  must miss the cache, the **warm** job must replay every artifact
  (``warm_hit_rate == 1.0`` on the job result *and* on ``/metrics``)
  and both jobs' headline numbers must be byte-identical;
* both SSE streams must be well-formed ``repro.serve/event/v1`` event
  sequences — ``job:queued`` first, every ``stage:*`` span paired
  start/end, exactly one terminal ``job:done`` at the end;
* the ledger endpoints must agree with the CLI: ``GET /runs`` lists
  both records, ``GET /runs/0/diff/1`` classifies the cold/warm deltas
  with **zero unexplained drift** and matches ``repro obs diff --json``
  byte for byte, ``GET /runs/latest/check`` passes against budgets
  derived from the warm run, and ``PUT /baseline`` moves the selector;
* shutdown is clean: the server thread exits on ``request_stop()``.

Artifacts (server request log, both event streams, the metrics
snapshot, diff JSON, budgets) land in ``out_dir`` (default
``build/serve-smoke``) so CI can upload them.  ``make serve-smoke``
wires this into CI.
"""

import contextlib
import http.client
import io
import json
import os
import sys
import threading

from repro.cli import main as cli_main
from repro.errors import ServeError
from repro.obs.persist import atomic_write_json
from repro.serve import StudyServer, decode_events, validate_event

#: the submission both runs use (identical on purpose)
SUBMISSION = {"preset": "small"}


class SmokeFailure(ServeError):
    """One smoke assertion failed; main() renders it as FAIL + exit 1."""


def request(port, method, path, body=None, timeout=300):
    """One HTTP exchange against the smoke server; returns (status, text)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


def check_events(events, label):
    """Validate one job's SSE event sequence; returns the done payload."""
    if not events:
        raise SmokeFailure(f"{label}: empty event stream")
    for event in events:
        validate_event(event)
    names = [event["event"] for event in events]
    if names[0] != "job:queued":
        raise SmokeFailure(f"{label}: stream starts with {names[0]!r}")
    if names[-1] != "job:done" or names.count("job:done") != 1:
        raise SmokeFailure(
            f"{label}: expected exactly one terminal job:done, got {names}"
        )
    if [event["seq"] for event in events] != list(range(len(events))):
        raise SmokeFailure(f"{label}: event seq numbers are not dense")
    starts = [
        event["data"]["span"] for event in events
        if event["event"] == "span:start"
        and event["data"]["span"].startswith("stage:")
    ]
    ends = [
        event["data"]["span"] for event in events
        if event["event"] == "span:end"
        and event["data"]["span"].startswith("stage:")
    ]
    if not starts or sorted(starts) != sorted(ends):
        raise SmokeFailure(
            f"{label}: unpaired stage spans (starts={starts}, ends={ends})"
        )
    for event in events:
        if event["event"] == "span:end" and "wall_s" not in event["data"]:
            raise SmokeFailure(f"{label}: span:end without wall_s")
    done = events[-1]
    if done["data"].get("state") != "done":
        raise SmokeFailure(f"{label}: job failed: {done['data']}")
    return done["data"]


def main() -> int:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "build/serve-smoke"
    os.makedirs(out_dir, exist_ok=True)
    cache = os.path.join(out_dir, "cache")
    budgets_path = os.path.join(out_dir, "budgets.json")

    server = StudyServer(
        cache_dir=cache,
        port=0,
        workers=2,
        log_path=os.path.join(out_dir, "server-log.jsonl"),
        budgets=budgets_path,
    )
    ready = threading.Event()
    thread = threading.Thread(
        target=server.run,
        kwargs={"on_ready": lambda _server: ready.set()},
        daemon=True,
    )
    thread.start()
    if not ready.wait(timeout=60):
        print("FAIL: server did not become ready", file=sys.stderr)
        return 1
    port = server.port

    try:
        results = {}
        for label in ("cold", "warm"):
            status, text = request(
                port, "POST", "/studies", json.dumps(SUBMISSION)
            )
            if status != 202:
                print(f"FAIL: {label} submit -> {status}: {text}",
                      file=sys.stderr)
                return 1
            job_id = json.loads(text)["job_id"]
            status, raw = request(
                port, "GET", f"/studies/{job_id}/events"
            )
            if status != 200:
                print(f"FAIL: {label} events -> {status}", file=sys.stderr)
                return 1
            with open(os.path.join(out_dir, f"events-{label}.sse"), "w",
                      encoding="utf-8") as handle:
                handle.write(raw)
            results[label] = check_events(decode_events(raw), label)

        if results["cold"]["cache_misses"] == 0:
            print("FAIL: cold run missed nothing — cache was not cold",
                  file=sys.stderr)
            return 1
        if results["warm"]["cache_misses"] != 0 or \
                results["warm"]["warm_hit_rate"] != 1.0:
            print(f"FAIL: warm run not fully cached: {results['warm']}",
                  file=sys.stderr)
            return 1

        cold_headline = json.dumps(results["cold"]["headline"], sort_keys=True)
        warm_headline = json.dumps(results["warm"]["headline"], sort_keys=True)
        if cold_headline != warm_headline:
            print("FAIL: cold and warm headline numbers differ",
                  file=sys.stderr)
            return 1

        status, text = request(port, "GET", "/metrics")
        metrics = json.loads(text)
        with open(os.path.join(out_dir, "metrics.json"), "w",
                  encoding="utf-8") as handle:
            handle.write(text)
        if metrics["warm_hit_rate"] != 1.0:
            print(f"FAIL: /metrics warm_hit_rate {metrics['warm_hit_rate']}",
                  file=sys.stderr)
            return 1
        if metrics["jobs"]["done"] != 2 or metrics["jobs"]["failed"] != 0:
            print(f"FAIL: unexpected job counts {metrics['jobs']}",
                  file=sys.stderr)
            return 1

        status, text = request(port, "GET", "/runs")
        runs = json.loads(text)["runs"]
        if [run["seq"] for run in runs] != [0, 1]:
            print(f"FAIL: /runs listed {runs}", file=sys.stderr)
            return 1

        # The HTTP diff must match `repro obs diff --json` byte for byte.
        status, text = request(port, "GET", "/runs/0/diff/1")
        http_diff = json.loads(text)
        with open(os.path.join(out_dir, "diff.json"), "w",
                  encoding="utf-8") as handle:
            handle.write(text)
        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            cli_status = cli_main(
                ["obs", "--cache-dir", cache, "diff", "0", "1", "--json"]
            )
        if cli_status != 0:
            print(f"FAIL: repro obs diff exited {cli_status}",
                  file=sys.stderr)
            return 1
        cli_diff = json.loads(stdout.getvalue())
        if http_diff != cli_diff:
            print("FAIL: HTTP diff disagrees with repro obs diff",
                  file=sys.stderr)
            return 1
        unexplained = [
            delta for delta in http_diff.get("deltas", [])
            if delta.get("classification") == "unexplained"
        ]
        if unexplained:
            print(f"FAIL: unexplained drift: {unexplained}", file=sys.stderr)
            return 1

        # Budgets gate over HTTP: envelopes derived from the warm
        # record must pass.
        status, text = request(port, "GET", "/runs/latest")
        warm_record = json.loads(text)
        total_wall = sum(s["wall_s"] for s in warm_record["stages"])
        atomic_write_json({
            "schema": "repro.obs/budgets/v1",
            "total_wall_s": {"max": total_wall * 10.0 + 600.0},
        }, budgets_path)
        status, text = request(port, "GET", "/runs/latest/check")
        check = json.loads(text)
        if status != 200 or not check["ok"]:
            print(f"FAIL: budget check -> {status}: {text}", file=sys.stderr)
            return 1

        status, text = request(
            port, "PUT", "/baseline", json.dumps({"selector": "0"})
        )
        if status != 200 or json.loads(text)["seq"] != 0:
            print(f"FAIL: PUT /baseline -> {status}: {text}",
                  file=sys.stderr)
            return 1
        status, text = request(port, "GET", "/runs/baseline")
        if json.loads(text)["seq"] != 0:
            print("FAIL: baseline selector did not move", file=sys.stderr)
            return 1
    except ServeError as exc:
        # SmokeFailure from check_events, or a malformed event stream
        # caught by validate_event/decode_events.
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    finally:
        server.request_stop()
        thread.join(timeout=30)

    if thread.is_alive():
        print("FAIL: server thread did not shut down", file=sys.stderr)
        return 1

    print(
        "OK: cold fill + warm replay served identical headlines "
        f"(warm hit rate 1.0), {metrics['jobs']['done']} jobs done, "
        "SSE streams well-formed and terminal, HTTP diff == CLI diff "
        "with zero unexplained drift, budgets gate passed, baseline "
        f"moved, clean shutdown; artifacts in {out_dir}/"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
