#!/usr/bin/env python
"""Fold a pytest-benchmark report into the run ledger.

Usage::

    python scripts/bench_to_ledger.py build/bench.json .repro-cache/ledger.jsonl

Reads the JSON report ``make bench`` writes (``--benchmark-json``) and
appends one ``kind="bench"`` ledger record whose metrics are gauges
keyed ``bench.time_s{benchmark=<name>,stat=<stat>}`` — one per
benchmark per summary statistic.  Performance history then lives in the
same auditable journal as the engine runs, and ``repro obs diff``
classifies any ``bench.*`` delta as *timing* (never drift), while
``repro obs check`` can put budget envelopes on the statistics.

With ``--lint-report build/dataflow-report.json`` the wall times of the
reprolint run (the ``time_s`` and per-family ``family_time_s`` keys the
linter writes alongside its dataflow analysis) are folded into the same
record as ``lint.time_s{family=total}`` and
``lint.time_s{family=<prefix>}`` gauges, so linter performance — per
rule family — is tracked and budget-gated in the ledger too.

With ``--serve-report build/serve-load.json`` each endpoint's
throughput from a ``scripts/serve_load.py`` run (schema
``repro.serve/load/v1``) is folded in as a
``serve.requests_per_s{endpoint=...}`` gauge — study-service
performance history lands in the same journal.

With ``--scale-report build/scale.json`` the per-stage throughput of a
``scripts/scale_world.py`` run (schema ``repro.columnar/scale/v1``) is
folded in as ``pipeline.flows_per_s{stage=...}`` gauges plus a
``pipeline.max_rss_mb`` gauge, so columnar record-path performance is
budget-gated like everything else.

With ``--profile-report build/profile-report.json`` a per-stage
hot-function report (``repro run --profile-report``, schema
``repro.obs/profile-report/v1``) is folded in as
``profile.self_s{func=...,stage=...}`` gauges — the exact fold
provenance applies to profiled engine runs, so standalone profiling
sweeps and engine runs gate against the same budget keys.

The positional pytest-benchmark report may be omitted when at least one
``--*-report`` source is given; the appended record is then a bench
record with only the side-channel gauges.
"""

import argparse
import json
import sys

from repro.errors import ObservabilityError
from repro.obs import LEDGER_SCHEMA, append_record, report_gauges
from repro.obs.metrics import metric_key
from repro.obs.names import (
    BENCH_TIME,
    LINT_TIME,
    PIPELINE_FLOWS_PER_S,
    PIPELINE_MAX_RSS_MB,
    SERVE_REQUESTS_PER_S,
)

#: the pytest-benchmark summary statistics folded into the ledger
STATS = ("min", "median", "mean", "max")


def lint_time_from(report: dict) -> float:
    """The linter wall time recorded in a reprolint dataflow report
    (``--dataflow-json``; key ``time_s``)."""
    time_s = report.get("time_s")
    if not isinstance(time_s, (int, float)) or isinstance(time_s, bool):
        raise ObservabilityError(
            "lint report carries no numeric 'time_s' field"
        )
    return float(time_s)


def lint_gauges_from(report: dict) -> dict:
    """Total + per-family linter wall-time gauges from a reprolint
    report (``--dataflow-json`` / ``--concurrency-json``).

    Reports predating per-family timing (no ``family_time_s``) fold
    only the total; a malformed per-family entry is an error.
    """
    gauges = {
        metric_key(LINT_TIME, {"family": "total"}): {
            "kind": "gauge", "value": lint_time_from(report),
        },
    }
    families = report.get("family_time_s", {})
    if not isinstance(families, dict):
        raise ObservabilityError(
            "lint report 'family_time_s' must be a mapping"
        )
    for family, seconds in sorted(families.items()):
        if not isinstance(seconds, (int, float)) or isinstance(
            seconds, bool
        ):
            raise ObservabilityError(
                f"lint report family {family!r} carries no numeric "
                "wall time"
            )
        key = metric_key(LINT_TIME, {"family": family})
        gauges[key] = {"kind": "gauge", "value": float(seconds)}
    return gauges


def serve_gauges_from(report: dict) -> dict:
    """Per-endpoint throughput gauges from a serve load report
    (``scripts/serve_load.py``, schema ``repro.serve/load/v1``)."""
    if report.get("schema") != "repro.serve/load/v1":
        raise ObservabilityError(
            f"serve report carries schema {report.get('schema')!r} "
            "(expected 'repro.serve/load/v1')"
        )
    endpoints = report.get("endpoints")
    if not isinstance(endpoints, dict) or not endpoints:
        raise ObservabilityError("serve report carries no 'endpoints'")
    gauges = {}
    for endpoint, stats in sorted(endpoints.items()):
        value = stats.get("requests_per_s") if isinstance(stats, dict) else None
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ObservabilityError(
                f"serve report endpoint {endpoint!r} carries no numeric "
                "'requests_per_s'"
            )
        key = metric_key(SERVE_REQUESTS_PER_S, {"endpoint": endpoint})
        gauges[key] = {"kind": "gauge", "value": float(value)}
    return gauges


def scale_gauges_from(report: dict) -> dict:
    """Per-stage throughput + peak-RSS gauges from a scale report
    (``scripts/scale_world.py``, schema ``repro.columnar/scale/v1``)."""
    if report.get("schema") != "repro.columnar/scale/v1":
        raise ObservabilityError(
            f"scale report carries schema {report.get('schema')!r} "
            "(expected 'repro.columnar/scale/v1')"
        )
    stages = report.get("stages")
    if not isinstance(stages, dict) or not stages:
        raise ObservabilityError("scale report carries no 'stages'")
    gauges = {}
    for stage, stats in sorted(stages.items()):
        value = stats.get("flows_per_s") if isinstance(stats, dict) else None
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ObservabilityError(
                f"scale report stage {stage!r} carries no numeric "
                "'flows_per_s'"
            )
        key = metric_key(PIPELINE_FLOWS_PER_S, {"stage": stage})
        gauges[key] = {"kind": "gauge", "value": float(value)}
    rss = report.get("max_rss_mb")
    if not isinstance(rss, (int, float)) or isinstance(rss, bool):
        raise ObservabilityError(
            "scale report carries no numeric 'max_rss_mb'"
        )
    gauges[metric_key(PIPELINE_MAX_RSS_MB, {})] = {
        "kind": "gauge", "value": float(rss),
    }
    return gauges


def bench_record(report) -> dict:
    """A ``kind="bench"`` ledger record from a pytest-benchmark report.

    ``report=None`` (benchmark report omitted) yields an empty bench
    record for the side-channel gauges to land in.  Identity fields
    (``seq``/``run_id``) are stamped at append time by
    :func:`repro.obs.ledger.append_record`.
    """
    if report is None:
        return {
            "schema": LEDGER_SCHEMA,
            "kind": "bench",
            "metrics": {},
            "n_benchmarks": 0,
        }
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise ObservabilityError(
            "benchmark report carries no 'benchmarks' entries"
        )
    metrics = {}
    for entry in benchmarks:
        name = entry.get("name")
        stats = entry.get("stats")
        if not isinstance(name, str) or not isinstance(stats, dict):
            raise ObservabilityError(
                f"malformed benchmark entry: {entry!r:.120}"
            )
        for stat in STATS:
            if stat not in stats:
                raise ObservabilityError(
                    f"benchmark {name!r} is missing stat {stat!r}"
                )
            key = metric_key(BENCH_TIME, {"benchmark": name, "stat": stat})
            metrics[key] = {"kind": "gauge", "value": float(stats[stat])}
    return {
        "schema": LEDGER_SCHEMA,
        "kind": "bench",
        "metrics": metrics,
        "n_benchmarks": len(benchmarks),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "report", nargs="?", default=None,
        help="pytest-benchmark JSON report (omit when only folding "
             "--*-report sources)",
    )
    parser.add_argument("ledger", help="ledger file to append to")
    parser.add_argument(
        "--lint-report",
        metavar="PATH",
        help=(
            "reprolint dataflow report (--dataflow-json) whose time_s is "
            "folded in as a lint.time_s gauge"
        ),
    )
    parser.add_argument(
        "--serve-report",
        metavar="PATH",
        help=(
            "serve load report (scripts/serve_load.py) whose per-endpoint "
            "throughput is folded in as serve.requests_per_s gauges"
        ),
    )
    parser.add_argument(
        "--scale-report",
        metavar="PATH",
        help=(
            "scale report (scripts/scale_world.py) whose per-stage "
            "throughput is folded in as pipeline.flows_per_s gauges"
        ),
    )
    parser.add_argument(
        "--profile-report",
        metavar="PATH",
        help=(
            "profile report (repro run --profile-report) whose per-stage "
            "hot-function self times are folded in as profile.self_s "
            "gauges"
        ),
    )
    args = parser.parse_args(argv)
    if args.report is None and not (
        args.lint_report
        or args.serve_report
        or args.scale_report
        or args.profile_report
    ):
        parser.error(
            "nothing to fold: give a benchmark report or at least one "
            "--*-report source"
        )

    def read_json(path: str) -> dict:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    try:
        report = read_json(args.report) if args.report else None
        lint = read_json(args.lint_report) if args.lint_report else None
        serve = read_json(args.serve_report) if args.serve_report else None
        scale = read_json(args.scale_report) if args.scale_report else None
        profile = (
            read_json(args.profile_report) if args.profile_report else None
        )
    except OSError as exc:
        print(f"bench_to_ledger: cannot read report: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(
            f"bench_to_ledger: report is not valid JSON: {exc}",
            file=sys.stderr,
        )
        return 1

    try:
        record = bench_record(report)
        if lint is not None:
            record["metrics"].update(lint_gauges_from(lint))
        if serve is not None:
            record["metrics"].update(serve_gauges_from(serve))
        if scale is not None:
            record["metrics"].update(scale_gauges_from(scale))
        if profile is not None:
            record["metrics"].update(report_gauges(profile))
        record = append_record(args.ledger, record)
    except ObservabilityError as exc:
        print(f"bench_to_ledger: {exc}", file=sys.stderr)
        return 1

    print(
        f"ledger: appended bench record {record['run_id']} "
        f"(seq {record['seq']}, {record['n_benchmarks']} benchmarks, "
        f"{len(record['metrics'])} metrics)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
