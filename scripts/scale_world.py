#!/usr/bin/env python
"""Drive the columnar record path against a million-user synthetic world.

Usage::

    python scripts/scale_world.py --users 50000 --out build/scale.json
    python scripts/scale_world.py --users 1000000 --requests-per-user 100

Builds one real small world as a template, then streams a synthetic
panel of ``--users`` users (``SyntheticCohortSource`` resamples the
template's request rows per synthetic user — a benchmark harness, not a
measurement; see ``docs/scaling.md``) through the streaming columnar
record path: cohort generation → ``classify_table`` →
``ConfinementAccumulator``.  Peak memory stays bounded by the cohort
size; the full request volume never exists at once.

Writes a JSON report (schema ``repro.columnar/scale/v1``) with
per-stage row counts, wall seconds, and ``flows_per_s`` throughput,
plus the process peak RSS — ``scripts/bench_to_ledger.py
--scale-report`` folds it into the run ledger as
``pipeline.flows_per_s{stage=...}`` gauges, and ``repro obs check``
gates those against the budget envelope in
``benchmarks/budgets_scale.json``.

With ``--rss-limit-mb`` the run fails (exit 1) when peak RSS exceeds
the limit — the memory-bound claim as an executable check.
"""

import argparse
import json
import os
import resource
import sys

from repro import Study, WorldConfig
from repro.columnar import HAVE_NUMPY
from repro.core.stream import (
    StreamingRecordPath,
    SyntheticCohortSource,
)
from repro.datasets.builder import build_world
from repro.obs.clock import SystemClock
from repro.web.columns import request_table

#: report schema stamp checked by bench_to_ledger --scale-report
SCALE_SCHEMA = "repro.columnar/scale/v1"


def max_rss_mb() -> float:
    """Peak resident set of this process, in MiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalize both.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def run_scale(
    users: int,
    requests_per_user: int,
    cohort_size: int,
    chunk_rows: int,
    seed: int,
) -> dict:
    """Stream the synthetic world and return the scale report."""
    clock = SystemClock()

    study = Study(world=build_world(WorldConfig.small(seed=seed)))
    template_requests = study.visit_log.requests
    classifier = study.classifier

    # Order-independent locator: the geolocation table is prebuilt over
    # the template's distinct addresses in sorted order, so throughput
    # numbers measure the record path, not the active-probing engine.
    reference = study.geolocation.reference
    located = {}
    for address in sorted(
        {request.ip for request in template_requests}, key=str
    ):
        located[address] = reference(address)

    template = request_table(template_requests)
    source = SyntheticCohortSource(
        template, study.world.streams, users, requests_per_user
    )
    path = StreamingRecordPath(
        classifier, located.get, chunk_rows=chunk_rows, clock=clock
    )

    generate_wall = 0.0
    peak_cohort_bytes = 0
    for lo in range(0, users, cohort_size):
        started = clock.wall()
        cohort = source.cohort(lo, min(lo + cohort_size, users))
        generate_wall += clock.wall() - started
        peak_cohort_bytes = max(peak_cohort_bytes, cohort.nbytes())
        path.consume(cohort)

    stages = {
        "generate": {
            "rows": float(path.n_rows),
            "wall_s": generate_wall,
            "flows_per_s": (
                path.n_rows / generate_wall if generate_wall > 0 else 0.0
            ),
        },
    }
    stages.update(path.stage_stats())
    headlines = path.headlines()
    return {
        "schema": SCALE_SCHEMA,
        "config": {
            "users": users,
            "requests_per_user": requests_per_user,
            "cohort_size": cohort_size,
            "chunk_rows": chunk_rows,
            "seed": seed,
            "numpy": HAVE_NUMPY,
        },
        "stages": stages,
        "max_rss_mb": max_rss_mb(),
        "peak_cohort_mb": peak_cohort_bytes / (1024.0 * 1024.0),
        "headlines": {
            "n_requests": headlines.n_requests,
            "n_tracking": headlines.n_tracking,
            "region_confinement_pct": headlines.region_confinement_pct,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--users", type=int, default=50_000,
        help="synthetic panel size (default 50k; the paper-scale target "
             "is 1M)",
    )
    parser.add_argument(
        "--requests-per-user", type=int, default=25,
        help="request rows minted per synthetic user (1M users x 100 "
             "reaches the 100M-flow target)",
    )
    parser.add_argument(
        "--cohort-size", type=int, default=10_000,
        help="users generated + processed per streaming cohort",
    )
    parser.add_argument(
        "--chunk-rows", type=int, default=65_536,
        help="rows per inner kernel chunk",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", metavar="PATH",
        help="write the JSON scale report here",
    )
    parser.add_argument(
        "--rss-limit-mb", type=float,
        help="fail when peak RSS exceeds this many MiB",
    )
    args = parser.parse_args(argv)
    for name in ("users", "requests_per_user", "cohort_size", "chunk_rows"):
        if getattr(args, name) < 1:
            print(f"scale_world: --{name.replace('_', '-')} must be >= 1",
                  file=sys.stderr)
            return 2

    report = run_scale(
        users=args.users,
        requests_per_user=args.requests_per_user,
        cohort_size=args.cohort_size,
        chunk_rows=args.chunk_rows,
        seed=args.seed,
    )

    for stage in ("generate", "classify", "confine"):
        stats = report["stages"][stage]
        print(
            f"scale: {stage:<9} {int(stats['rows']):>12,} rows  "
            f"{stats['wall_s']:>9.2f}s  "
            f"{stats['flows_per_s']:>12,.0f} flows/s"
        )
    print(
        f"scale: peak RSS {report['max_rss_mb']:,.1f} MiB, "
        f"peak cohort {report['peak_cohort_mb']:,.1f} MiB, "
        f"numpy={report['config']['numpy']}, "
        f"EU28 confinement {report['headlines']['region_confinement_pct']:.2f}%"
    )

    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"scale: report written to {args.out}")

    if args.rss_limit_mb is not None and report["max_rss_mb"] > args.rss_limit_mb:
        print(
            f"scale: peak RSS {report['max_rss_mb']:,.1f} MiB exceeds "
            f"limit {args.rss_limit_mb:,.1f} MiB",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
