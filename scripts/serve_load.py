#!/usr/bin/env python
"""Load benchmark: concurrent clients against a warm study server.

Usage::

    python scripts/serve_load.py [--clients 8] [--requests 25] \
        [--out build/serve-load.json]

Starts a :class:`repro.serve.StudyServer` on an ephemeral port, warms
its cache with one small study (submitted twice, so the second run
verifies the cache really is warm), then hammers the read endpoints —
``/healthz``, ``/metrics``, ``/runs`` — with ``--clients`` concurrent
threads issuing ``--requests`` requests each per endpoint, and reports
requests/sec per endpoint plus the server's warm-cache hit rate.

The JSON report (schema ``repro.serve/load/v1``) feeds
``scripts/bench_to_ledger.py --serve-report``, which folds each
endpoint's throughput into the run ledger as a
``serve.requests_per_s{endpoint=...}`` gauge — service performance
history then lives in the same auditable journal as the engine runs
and the pytest benchmarks.
"""

import argparse
import http.client
import json
import os
import sys
import threading
import time

from repro.errors import ServeError
from repro.serve import StudyServer, decode_events

#: the read endpoints the benchmark hammers
ENDPOINTS = ("/healthz", "/metrics", "/runs")

LOAD_SCHEMA = "repro.serve/load/v1"


def request(port, method, path, body=None, timeout=300):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


def warm(port) -> float:
    """Submit the same small study twice; returns the warm hit rate."""
    done = {}
    for label in ("cold", "warm"):
        status, text = request(
            port, "POST", "/studies", json.dumps({"preset": "small"})
        )
        if status != 202:
            raise ServeError(f"{label} submit failed: {status} {text}")
        job_id = json.loads(text)["job_id"]
        _status, raw = request(port, "GET", f"/studies/{job_id}/events")
        events = decode_events(raw)
        if events[-1]["data"].get("state") != "done":
            raise ServeError(f"{label} job failed: {events[-1]['data']}")
        done[label] = events[-1]["data"]
    return done["warm"]["warm_hit_rate"]


def hammer(port, endpoint, clients, requests_each):
    """``clients`` threads, ``requests_each`` GETs each; returns stats."""
    errors = []
    barrier = threading.Barrier(clients + 1)

    def client():
        barrier.wait()
        for _ in range(requests_each):
            status, _text = request(port, "GET", endpoint, timeout=60)
            if status != 200:
                errors.append(status)

    threads = [threading.Thread(target=client) for _ in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start
    total = clients * requests_each
    return {
        "requests": total,
        "errors": len(errors),
        "wall_s": round(wall_s, 6),
        "requests_per_s": round(total / wall_s, 3) if wall_s > 0 else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads (default: 8)")
    parser.add_argument("--requests", type=int, default=25,
                        help="requests per client per endpoint (default: 25)")
    parser.add_argument("--out", default="build/serve-load.json",
                        help="JSON report path (default: build/serve-load.json)")
    parser.add_argument("--cache-dir", default="build/serve-load-cache",
                        help="cache directory (default: build/serve-load-cache)")
    args = parser.parse_args(argv)

    server = StudyServer(cache_dir=args.cache_dir, port=0, workers=2)
    ready = threading.Event()
    thread = threading.Thread(
        target=server.run,
        kwargs={"on_ready": lambda _server: ready.set()},
        daemon=True,
    )
    thread.start()
    if not ready.wait(timeout=60):
        print("serve_load: server did not become ready", file=sys.stderr)
        return 1

    try:
        warm_hit_rate = warm(server.port)
        report = {
            "schema": LOAD_SCHEMA,
            "clients": args.clients,
            "requests_per_client": args.requests,
            "warm_hit_rate": warm_hit_rate,
            "endpoints": {
                endpoint: hammer(
                    server.port, endpoint, args.clients, args.requests
                )
                for endpoint in ENDPOINTS
            },
        }
    except ServeError as exc:
        print(f"serve_load: {exc}", file=sys.stderr)
        return 1
    finally:
        server.request_stop()
        thread.join(timeout=30)

    failures = {
        endpoint: stats["errors"]
        for endpoint, stats in report["endpoints"].items()
        if stats["errors"]
    }
    if failures:
        print(f"serve_load: non-200 responses: {failures}", file=sys.stderr)
        return 1
    if warm_hit_rate != 1.0:
        print(f"serve_load: cache not warm (hit rate {warm_hit_rate})",
              file=sys.stderr)
        return 1

    parent = os.path.dirname(args.out)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")

    lines = [
        f"{endpoint}: {stats['requests_per_s']:.0f} req/s "
        f"({stats['requests']} requests, {args.clients} clients)"
        for endpoint, stats in sorted(report["endpoints"].items())
    ]
    print("\n".join(lines))
    print(f"warm hit rate {warm_hit_rate}; report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
