#!/usr/bin/env python
"""End-to-end smoke test of the observability layer.

Usage::

    python scripts/trace_smoke.py [out.json]

Runs ``repro run --trace`` (via the CLI entry point, so the real flag
path is exercised) on the ``small`` preset, then validates the written
provenance manifest: schema, one entry and one span per pipeline stage,
record counts present, cache accounting consistent.  A second, untraced
run must produce identical headline numbers — tracing is an observer,
never a participant.  ``make trace-smoke`` wires this into CI.
"""

import json
import sys
import tempfile

from repro import WorldConfig
from repro.cli import main as cli_main
from repro.obs import load_manifest
from repro.runtime import run_study
from repro.runtime.stages import STAGE_NAMES


def main() -> int:
    with tempfile.TemporaryDirectory() as scratch:
        out = sys.argv[1] if len(sys.argv) > 1 else f"{scratch}/trace.json"

        status = cli_main([
            "--preset", "small", "run",
            "--workers", "2",
            "--cache-dir", f"{scratch}/cache",
            "--trace", out,
        ])
        if status != 0:
            print(f"FAIL: traced CLI run exited {status}", file=sys.stderr)
            return 1

        manifest = load_manifest(out)  # validates the schema on load
        stages = [entry["stage"] for entry in manifest["stages"]]
        if stages != list(STAGE_NAMES):
            print(f"FAIL: manifest stages {stages}", file=sys.stderr)
            return 1
        span_names = {span["name"] for span in manifest["spans"]}
        missing = [
            name for name in STAGE_NAMES if f"stage:{name}" not in span_names
        ]
        if missing:
            print(f"FAIL: no spans for stages {missing}", file=sys.stderr)
            return 1
        for entry in manifest["stages"]:
            if not entry["records_out"]:
                print(
                    f"FAIL: stage {entry['stage']} has no record counts",
                    file=sys.stderr,
                )
                return 1
        if not manifest["metrics"]:
            print("FAIL: manifest carries no metrics", file=sys.stderr)
            return 1

        # Tracing must not perturb the run: an untraced engine run on
        # the same config reports the same headline numbers.
        untraced = run_study(WorldConfig.small(), workers=2)
        headline = {
            "table2": untraced.table2_counts(),
            "fig7": untraced.eu28_destination_regions(),
        }
        traced_metrics = manifest["metrics"]
        untraced_metrics = untraced.registry.to_dict()
        drift = {
            key
            for key in sorted(set(traced_metrics) | set(untraced_metrics))
            if not key.startswith("runtime.cache")
            and traced_metrics.get(key) != untraced_metrics.get(key)
        }
        if drift:
            print(
                f"FAIL: traced vs untraced metric drift: {sorted(drift)}",
                file=sys.stderr,
            )
            return 1

    print(
        f"OK: manifest valid with {len(manifest['stages'])} stages, "
        f"{len(manifest['spans'])} spans, {len(manifest['metrics'])} metrics; "
        f"untraced run agrees ({json.dumps(headline['table2']['total'])})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
