#!/usr/bin/env python
"""End-to-end smoke test of the run ledger and regression diffing.

Usage::

    python scripts/diff_smoke.py [out_dir]

Runs ``repro run --trace-events`` twice (via the CLI entry point, so
the real flag path is exercised) against one cache directory, then
checks the ledger pipeline end to end:

* both runs appended ledger records and ``repro obs diff`` between them
  reports **zero unexplained drift** — the cold/warm cache deltas must
  all classify as *cache*;
* both exported trace-event files validate (monotonic integer
  timestamps, complete "X" events) — the files Perfetto loads;
* ``repro obs check`` passes against budgets derived from the run and
  fails (exit 1) against an impossible envelope.

Artifacts (ledger, diff JSON, trace events, budgets) land in
``out_dir`` (default ``build/diff-smoke``) so CI can upload them.
``make diff-smoke`` wires this into CI.
"""

import json
import os
import sys

from repro.cli import main as cli_main
from repro.errors import ObservabilityError
from repro.obs import diff_records, load_ledger, load_trace_events
from repro.obs.ledger import ledger_path
from repro.obs.persist import atomic_write_json


def _budgets_from(record: dict, slack: float = 10.0) -> dict:
    """A budgets document the given run record satisfies by construction."""
    counters = sorted(
        key for key, entry in record["metrics"].items()
        if entry["kind"] == "counter"
    )
    if not counters:
        raise ObservabilityError("run record carries no counters to budget")
    exact = counters[0]
    value = record["metrics"][exact]["value"]
    total_wall = sum(stage["wall_s"] for stage in record["stages"])
    return {
        "schema": "repro.obs/budgets/v1",
        "metrics": {exact: {"min": value, "max": value}},
        "stage_wall_s": {
            stage["stage"]: {"max": stage["wall_s"] * slack + 60.0}
            for stage in record["stages"]
        },
        "total_wall_s": {"max": total_wall * slack + 600.0},
    }


def main() -> int:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "build/diff-smoke"
    os.makedirs(out_dir, exist_ok=True)
    cache = os.path.join(out_dir, "cache")

    for label in ("cold", "warm"):
        status = cli_main([
            "--preset", "small", "run",
            "--workers", "2",
            "--cache-dir", cache,
            "--trace-events", os.path.join(out_dir, f"events-{label}.json"),
        ])
        if status != 0:
            print(f"FAIL: {label} CLI run exited {status}", file=sys.stderr)
            return 1

    records = load_ledger(ledger_path(cache))
    if len(records) != 2:
        print(f"FAIL: expected 2 ledger records, got {len(records)}",
              file=sys.stderr)
        return 1

    # The CLI diff must agree: exit 0 and write the diff JSON artifact.
    diff_json = os.path.join(out_dir, "diff.json")
    status = cli_main([
        "obs", "--cache-dir", cache,
        "diff", "latest~1", "latest", "--out", diff_json,
    ])
    if status != 0:
        print(f"FAIL: repro obs diff exited {status}", file=sys.stderr)
        return 1

    diff = diff_records(records[0], records[1])
    unexplained = diff.unexplained()
    if unexplained:
        keys = sorted(delta.key for delta in unexplained)
        print(f"FAIL: unexplained drift between identical runs: {keys}",
              file=sys.stderr)
        return 1
    if diff.config_changed:
        print("FAIL: identical configs reported as changed", file=sys.stderr)
        return 1
    counts = diff.counts()
    if not counts.get("cache"):
        print("FAIL: cold vs warm run produced no cache deltas",
              file=sys.stderr)
        return 1

    # Both trace exports must validate — load_trace_events re-checks the
    # monotonic-timestamp / complete-event invariants Perfetto relies on.
    n_events = {}
    for label in ("cold", "warm"):
        payload = load_trace_events(os.path.join(out_dir, f"events-{label}.json"))
        n_events[label] = len(payload["traceEvents"])
        if not n_events[label]:
            print(f"FAIL: {label} trace export is empty", file=sys.stderr)
            return 1

    # Budget gate: derived envelopes pass, an impossible one fails.
    budgets_path = os.path.join(out_dir, "budgets.json")
    atomic_write_json(_budgets_from(records[1]), budgets_path)
    status = cli_main(
        ["obs", "--cache-dir", cache, "check", "--budgets", budgets_path]
    )
    if status != 0:
        print(f"FAIL: derived budgets violated (exit {status})",
              file=sys.stderr)
        return 1
    impossible = os.path.join(out_dir, "budgets-impossible.json")
    atomic_write_json(
        {"schema": "repro.obs/budgets/v1", "total_wall_s": {"max": 0.0}},
        impossible,
    )
    status = cli_main(
        ["obs", "--cache-dir", cache, "check", "--budgets", impossible]
    )
    if status != 1:
        print(f"FAIL: impossible budget not flagged (exit {status})",
              file=sys.stderr)
        return 1

    with open(diff_json, "r", encoding="utf-8") as handle:
        written = json.load(handle)
    print(
        "OK: 2 ledger records, diff classified "
        f"{sum(counts.values())} deltas ({counts}) with zero unexplained "
        f"drift; trace exports valid ({n_events['cold']}/{n_events['warm']} "
        f"events); budgets gate exercised; diff JSON schema "
        f"{written['schema']!r} written to {diff_json}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
