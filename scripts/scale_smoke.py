#!/usr/bin/env python
"""End-to-end smoke test of the columnar record path at 50k users.

Usage::

    python scripts/scale_smoke.py [out_dir]

Exercises the whole scaling story in one bounded run:

* ``scripts/scale_world.py`` streams a 50k-user synthetic world
  (~1.25M request rows) through the columnar kernels with a hard peak
  RSS limit — the memory-bound claim, executed;
* the scale report is folded into a fresh run ledger via
  ``scripts/bench_to_ledger.py --scale-report``;
* ``repro obs check`` gates the resulting
  ``pipeline.flows_per_s{stage=...}`` gauges against the committed
  envelope in ``benchmarks/budgets_scale.json`` and must pass, and must
  fail against an impossible envelope (the gate actually gates).

Artifacts (scale report, ledger, budgets) land in ``out_dir`` (default
``build/scale-smoke``) so CI can upload them.  ``make scale-smoke``
wires this into CI.
"""

import json
import os
import sys

import bench_to_ledger
import scale_world

from repro.cli import main as cli_main
from repro.obs.ledger import ledger_path
from repro.obs.persist import atomic_write_json

#: the committed throughput envelope this smoke run must satisfy
BUDGETS = os.path.join("benchmarks", "budgets_scale.json")

#: smoke-run geometry: 50k users x 25 requests = 1.25M rows streamed
USERS = 50_000
REQUESTS_PER_USER = 25
COHORT_SIZE = 5_000
RSS_LIMIT_MB = 1_200.0


def main() -> int:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "build/scale-smoke"
    os.makedirs(out_dir, exist_ok=True)
    report_path = os.path.join(out_dir, "scale.json")
    cache = os.path.join(out_dir, "cache")

    status = scale_world.main([
        "--users", str(USERS),
        "--requests-per-user", str(REQUESTS_PER_USER),
        "--cohort-size", str(COHORT_SIZE),
        "--rss-limit-mb", str(RSS_LIMIT_MB),
        "--out", report_path,
    ])
    if status != 0:
        print(f"FAIL: scale_world exited {status}", file=sys.stderr)
        return 1

    with open(report_path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if report["headlines"]["n_requests"] != USERS * REQUESTS_PER_USER:
        print(
            f"FAIL: streamed {report['headlines']['n_requests']} rows, "
            f"expected {USERS * REQUESTS_PER_USER}",
            file=sys.stderr,
        )
        return 1

    ledger = ledger_path(cache)
    os.makedirs(os.path.dirname(ledger), exist_ok=True)
    status = bench_to_ledger.main([ledger, "--scale-report", report_path])
    if status != 0:
        print(f"FAIL: bench_to_ledger exited {status}", file=sys.stderr)
        return 1

    status = cli_main(
        ["obs", "--cache-dir", cache, "check", "--budgets", BUDGETS]
    )
    if status != 0:
        print(
            f"FAIL: throughput left the {BUDGETS} envelope (exit {status})",
            file=sys.stderr,
        )
        return 1

    # The gate must actually gate: an impossible floor has to fail.
    impossible = os.path.join(out_dir, "budgets-impossible.json")
    atomic_write_json(
        {
            "schema": "repro.obs/budgets/v1",
            "metrics": {
                "pipeline.flows_per_s{stage=classify}": {"min": 1e12},
            },
        },
        impossible,
    )
    status = cli_main(
        ["obs", "--cache-dir", cache, "check", "--budgets", impossible]
    )
    if status != 1:
        print(
            f"FAIL: impossible throughput floor not flagged (exit {status})",
            file=sys.stderr,
        )
        return 1

    classify = report["stages"]["classify"]["flows_per_s"]
    print(
        f"OK: {USERS:,} users / {USERS * REQUESTS_PER_USER:,} rows streamed "
        f"within {RSS_LIMIT_MB:,.0f} MiB "
        f"(peak {report['max_rss_mb']:,.1f} MiB); "
        f"classify {classify:,.0f} flows/s; budgets gate exercised; "
        f"artifacts in {out_dir}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
