#!/usr/bin/env python
"""Cross-seed robustness sweep.

Usage::

    python scripts/seed_sweep.py [n_seeds] [preset] [--workers N]
                                 [--cache-dir DIR]

Rebuilds the world under ``n_seeds`` different seeds (default 5, preset
``small``) and reports mean / min / max for every headline metric — the
check that the calibrated shape is a property of the model, not of one
lucky seed.  Each seed's pipeline executes through the
:mod:`repro.runtime` engine; ``--workers`` parallelizes the stage
shards and ``--cache-dir`` lets an interrupted sweep resume where it
stopped (each seed has its own cache keys, so seeds never collide).
"""

import argparse
import statistics

from repro import WorldConfig
from repro.analysis.report import PAPER_VALUES, experiment_summary
from repro.runtime import run_study

PRESETS = {
    "small": WorldConfig.small,
    "medium": WorldConfig.medium,
}


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("n_seeds", nargs="?", type=int, default=5)
    parser.add_argument(
        "preset", nargs="?", choices=sorted(PRESETS), default="small"
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process workers for shard fan-out (default: 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="artifact cache directory (default: no cache)",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    factory = PRESETS[args.preset]

    runs = []
    for index in range(args.n_seeds):
        seed = 1000 + index
        print(f"running seed {seed} ({index + 1}/{args.n_seeds})…")
        run = run_study(
            factory(seed=seed),
            workers=args.workers,
            cache_dir=args.cache_dir,
        )
        runs.append(experiment_summary(run.study()))

    print(
        f"\n{'metric':<42} {'paper':>8} {'mean':>8} {'min':>8} {'max':>8}"
    )
    for key in sorted(PAPER_VALUES):
        values = [run[key] for run in runs]
        print(
            f"{key:<42} {PAPER_VALUES[key]:>8.2f} "
            f"{statistics.mean(values):>8.2f} {min(values):>8.2f} "
            f"{max(values):>8.2f}"
        )


if __name__ == "__main__":
    main()
