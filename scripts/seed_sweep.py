#!/usr/bin/env python
"""Cross-seed robustness sweep.

Usage::

    python scripts/seed_sweep.py [n_seeds] [preset]

Rebuilds the world under ``n_seeds`` different seeds (default 5, preset
``small``) and reports mean / min / max for every headline metric — the
check that the calibrated shape is a property of the model, not of one
lucky seed.
"""

import statistics
import sys

from repro import Study, WorldConfig
from repro.analysis.report import PAPER_VALUES, experiment_summary

PRESETS = {
    "small": WorldConfig.small,
    "medium": WorldConfig.medium,
}


def main() -> None:
    n_seeds = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    preset = sys.argv[2] if len(sys.argv) > 2 else "small"
    factory = PRESETS[preset]

    runs = []
    for index in range(n_seeds):
        seed = 1000 + index
        print(f"running seed {seed} ({index + 1}/{n_seeds})…")
        runs.append(experiment_summary(Study(factory(seed=seed))))

    print(
        f"\n{'metric':<42} {'paper':>8} {'mean':>8} {'min':>8} {'max':>8}"
    )
    for key in sorted(PAPER_VALUES):
        values = [run[key] for run in runs]
        print(
            f"{key:<42} {PAPER_VALUES[key]:>8.2f} "
            f"{statistics.mean(values):>8.2f} {min(values):>8.2f} "
            f"{max(values):>8.2f}"
        )


if __name__ == "__main__":
    main()
